"""Tests for documents: Document, Catalog, popularity models."""

from __future__ import annotations

import random

import pytest

from repro.documents.catalog import Catalog
from repro.documents.document import Document, DocumentError
from repro.documents.popularity import (
    ZipfPopularity,
    uniform_popularity,
    zipf_weights,
)


class TestDocument:
    def test_valid(self):
        doc = Document("a/b.html", home=0, size=1024)
        assert doc.doc_id == "a/b.html"

    def test_empty_id_rejected(self):
        with pytest.raises(DocumentError):
            Document("", home=0)

    def test_negative_home_rejected(self):
        with pytest.raises(DocumentError):
            Document("x", home=-1)

    def test_bad_size_rejected(self):
        with pytest.raises(DocumentError):
            Document("x", home=0, size=0)

    def test_immutable(self):
        doc = Document("x", home=0)
        with pytest.raises(AttributeError):
            doc.size = 99


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog(home=2)
        doc = Document("x", home=2)
        catalog.add(doc)
        assert catalog.get("x") is doc
        assert "x" in catalog
        assert len(catalog) == 1

    def test_home_mismatch_rejected(self):
        catalog = Catalog(home=2)
        with pytest.raises(DocumentError, match="home"):
            catalog.add(Document("x", home=3))

    def test_duplicate_rejected(self):
        catalog = Catalog(home=0, documents=[Document("x", home=0)])
        with pytest.raises(DocumentError, match="duplicate"):
            catalog.add(Document("x", home=0))

    def test_unknown_get(self):
        with pytest.raises(DocumentError, match="unknown"):
            Catalog(home=0).get("nope")

    def test_iteration_sorted(self):
        catalog = Catalog(
            home=0,
            documents=[Document("b", 0), Document("a", 0), Document("c", 0)],
        )
        assert [d.doc_id for d in catalog] == ["a", "b", "c"]
        assert catalog.doc_ids == ("a", "b", "c")

    def test_generate(self):
        catalog = Catalog.generate(home=1, count=5, prefix="d", size=100)
        assert len(catalog) == 5
        assert all(d.size == 100 for d in catalog)
        assert all(d.home == 1 for d in catalog)

    def test_generate_random_sizes(self):
        catalog = Catalog.generate(
            home=0,
            count=50,
            size_rng=random.Random(1),
            size_range=(1_000, 1_000_000),
        )
        sizes = [d.size for d in catalog]
        assert all(1_000 <= s <= 1_000_000 for s in sizes)
        assert len(set(sizes)) > 10  # actually random


class TestZipfWeights:
    def test_sum_to_one(self):
        assert sum(zipf_weights(10, 1.0)) == pytest.approx(1.0)

    def test_rank_ordering(self):
        w = zipf_weights(5, 1.0)
        assert w == sorted(w, reverse=True)

    def test_s_zero_uniform(self):
        assert zipf_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_uniform_popularity_alias(self):
        assert uniform_popularity(4) == pytest.approx([0.25] * 4)

    def test_higher_s_more_skewed(self):
        flat = zipf_weights(10, 0.5)
        steep = zipf_weights(10, 1.5)
        assert steep[0] > flat[0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, -1.0)

    def test_vectorized_matches_reference_loop(self):
        """The NumPy path equals the seed's pure-Python 1/k**s loop."""
        for n, s in [(1, 1.0), (7, 0.6), (100, 1.5), (1000, 0.0)]:
            raw = [1.0 / (k**s) for k in range(1, n + 1)]
            total = sum(raw)
            expected = [w / total for w in raw]
            assert zipf_weights(n, s) == pytest.approx(expected, rel=1e-12)

    def test_large_catalog_is_fast_enough(self):
        # 10^5-document catalogs are a cluster-scale hot path
        weights = zipf_weights(100_000, 0.9)
        assert len(weights) == 100_000
        assert sum(weights) == pytest.approx(1.0)


class TestZipfPopularity:
    def test_weight_lookup(self):
        pop = ZipfPopularity(("a", "b", "c"), s=1.0)
        assert pop.weight("a") > pop.weight("b") > pop.weight("c")
        assert sum(pop.weights()) == pytest.approx(1.0)

    def test_unknown_document(self):
        with pytest.raises(KeyError):
            ZipfPopularity(("a",)).weight("z")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfPopularity(())

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            ZipfPopularity(("a", "a", "b"))

    def test_split_rate(self):
        pop = ZipfPopularity(("a", "b"), s=0.0)
        assert pop.split_rate(10.0) == [("a", 5.0), ("b", 5.0)]

    def test_split_rate_negative(self):
        with pytest.raises(ValueError):
            ZipfPopularity(("a",)).split_rate(-1.0)

    def test_sampling_distribution(self):
        pop = ZipfPopularity(tuple("abcdef"), s=1.0)
        rng = random.Random(5)
        counts = {d: 0 for d in pop.doc_ids}
        trials = 20_000
        for _ in range(trials):
            counts[pop.sample(rng)] += 1
        for doc in pop.doc_ids:
            expected = pop.weight(doc)
            assert counts[doc] / trials == pytest.approx(expected, abs=0.02)
