"""Shared fixtures for the test suite (strategies live in tests/helpers.py)."""

from __future__ import annotations

import random

import pytest

from repro.core.tree import RoutingTree


@pytest.fixture
def rng():
    """A deterministic RNG for non-hypothesis randomized tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_tree():
    """The Figure 2 tree: 0 <- {1, 2}; 1 <- {3, 4}."""
    return RoutingTree([0, 0, 0, 1, 1])
