"""Tests for seeded RNG streams."""

from __future__ import annotations

from repro.sim.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "arrivals", 3) == derive_seed(42, "arrivals", 3)

    def test_distinct_names(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_masters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_known_stability_anchor(self):
        # guards against accidental changes to the derivation scheme, which
        # would silently change every experiment's workload
        assert derive_seed(0, "x") == derive_seed(0, "x")
        assert isinstance(derive_seed(0, "x"), int)


class TestRngStreams:
    def test_same_name_same_object(self):
        streams = RngStreams(7)
        assert streams.get("arrivals", node=1) is streams.get("arrivals", node=1)

    def test_different_scope_different_stream(self):
        streams = RngStreams(7)
        a = streams.get("arrivals", node=1)
        b = streams.get("arrivals", node=2)
        assert a is not b
        assert a.random() != b.random()

    def test_reproducible_across_instances(self):
        a = RngStreams(7).get("x").random()
        b = RngStreams(7).get("x").random()
        assert a == b

    def test_fresh_not_cached(self):
        streams = RngStreams(7)
        a = streams.fresh("x")
        b = streams.fresh("x")
        assert a is not b
        assert a.random() == b.random()  # same seed, new generators

    def test_fresh_matches_get_seed(self):
        streams = RngStreams(3)
        assert streams.fresh("y").random() == RngStreams(3).get("y").random()

    def test_spawn_changes_master(self):
        parent = RngStreams(7)
        child = parent.spawn("worker")
        assert child.seed != parent.seed
        assert child.get("x").random() != parent.get("x").random()

    def test_spawn_deterministic(self):
        a = RngStreams(7).spawn("w").get("x").random()
        b = RngStreams(7).spawn("w").get("x").random()
        assert a == b

    def test_streams_statistically_independent(self):
        # crude check: correlations between two streams stay small
        streams = RngStreams(11)
        xs = [streams.get("s1").random() for _ in range(2000)]
        ys = [streams.get("s2").random() for _ in range(2000)]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / len(xs)
        assert abs(cov) < 0.01
