"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append("c"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("low"), priority=5)
        sim.at(1.0, lambda: log.append("high"), priority=0)
        sim.run()
        assert log == ["high", "low"]

    def test_after_relative(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.5]

    def test_clock_advances(self):
        sim = Simulator()
        sim.at(4.2, lambda: None)
        sim.run()
        assert sim.now == 4.2

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before now"):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_non_finite_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().at(float("inf"), lambda: None)

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.at(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 3


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_cancel_idempotent(self):
        sim = Simulator()
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_pending_counts_only_live(self):
        sim = Simulator()
        keep = sim.at(1.0, lambda: None)
        drop = sim.at(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1


class TestRunLimits:
    def test_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()  # resume drains the rest
        assert fired == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for t in range(10):
            sim.at(float(t + 1), lambda t=t: log.append(t))
        sim.run(max_events=4)
        assert log == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_executes_one(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(2.0, lambda: log.append(2))
        assert sim.step() is True
        assert log == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        error = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                error.append(exc)

        sim.at(1.0, recurse)
        sim.run()
        assert error


class TestPeriodic:
    def test_every_fires_at_period(self):
        sim = Simulator()
        times = []
        sim.every(1.0, lambda: times.append(sim.now))
        sim.run(until=4.5)
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_every_custom_start(self):
        sim = Simulator()
        times = []
        sim.every(2.0, lambda: times.append(sim.now), start=0.5)
        sim.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_cancel_stops_timer(self):
        sim = Simulator()
        times = []
        cancel = sim.every(1.0, lambda: times.append(sim.now))
        sim.at(2.5, cancel)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_bad_period(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)

    def test_cascading_events_deterministic(self):
        # two runs with identical schedules produce identical traces
        def build():
            sim = Simulator()
            log = []

            def tick(depth):
                log.append((round(sim.now, 6), depth))
                if depth < 3:
                    sim.after(0.1, lambda: tick(depth + 1))
                    sim.after(0.2, lambda: tick(depth + 1))

            sim.at(0.0, lambda: tick(0))
            sim.run()
            return log

        assert build() == build()
