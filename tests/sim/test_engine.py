"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append("c"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("low"), priority=5)
        sim.at(1.0, lambda: log.append("high"), priority=0)
        sim.run()
        assert log == ["high", "low"]

    def test_after_relative(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda: sim.after(0.5, lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.5]

    def test_clock_advances(self):
        sim = Simulator()
        sim.at(4.2, lambda: None)
        sim.run()
        assert sim.now == 4.2

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before now"):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_non_finite_time_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().at(float("inf"), lambda: None)

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.at(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 3


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_cancel_idempotent(self):
        sim = Simulator()
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_pending_counts_only_live(self):
        sim = Simulator()
        keep = sim.at(1.0, lambda: None)
        drop = sim.at(2.0, lambda: None)
        drop.cancel()
        assert sim.pending == 1


class TestRunLimits:
    def test_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()  # resume drains the rest
        assert fired == [1, 10]

    def test_max_events(self):
        sim = Simulator()
        log = []
        for t in range(10):
            sim.at(float(t + 1), lambda t=t: log.append(t))
        sim.run(max_events=4)
        assert log == [0, 1, 2, 3]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_executes_one(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(2.0, lambda: log.append(2))
        assert sim.step() is True
        assert log == [1]

    def test_not_reentrant(self):
        sim = Simulator()
        error = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                error.append(exc)

        sim.at(1.0, recurse)
        sim.run()
        assert error


class TestCancellationCompaction:
    """Lazy cancellation must not grow the heap without bound."""

    def test_heap_compacts_when_mostly_cancelled(self):
        sim = Simulator()
        live = [sim.at(float(i + 1), lambda: None) for i in range(10)]
        cancelled = [sim.at(1000.0 + i, lambda: None) for i in range(5000)]
        for handle in cancelled:
            handle.cancel()
        # cancelled entries outnumber live ones, so the heap was rebuilt
        assert len(sim._heap) < 100
        assert sim.pending == 10
        sim.run()
        assert sim.events_executed == 10

    def test_long_run_with_many_cancelled_timers_bounded(self):
        # the regression shape: a long simulation where recurring work
        # keeps scheduling-and-cancelling (rate changes, retries)
        sim = Simulator()
        fired = [0]

        def tick():
            fired[0] += 1
            doomed = [sim.at(sim.now + 50.0, lambda: None) for _ in range(20)]
            for handle in doomed:
                handle.cancel()
            if sim.now < 1000.0:
                sim.at(sim.now + 1.0, tick)

        sim.at(1.0, tick)
        sim.run(until=1001.0)
        assert fired[0] == 1000
        # 20k cancelled entries passed through; the live heap stays tiny
        assert len(sim._heap) < 200

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append(1))
        sim.run()
        handle.cancel()  # already fired: callback is None, nothing counted
        handle.cancel()
        assert log == [1]
        assert sim.pending == 0

    def test_pending_is_exact_after_mixed_cancels(self):
        sim = Simulator()
        handles = [sim.at(float(i + 1), lambda: None) for i in range(6)]
        for handle in handles[::2]:
            handle.cancel()
        assert sim.pending == 3


class TestPostFastPath:
    def test_post_orders_with_at(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("at"))
        sim.post(1.0, lambda: log.append("post"))
        sim.at(1.0, lambda: log.append("at2"))
        sim.run()
        # same seq counter: strict scheduling order at equal times
        assert log == ["at", "post", "at2"]

    def test_post_rejects_past_and_non_finite(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before now"):
            sim.post(1.0, lambda: None)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.post(float("inf"), lambda: None)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.post(float("nan"), lambda: None)

    def test_claim_seq_preserves_tie_order(self):
        sim = Simulator()
        first = sim.claim_seq()
        sim.post(1.0, lambda: None)
        assert sim.claim_seq() > first + 1


class TestSchedulingIntoThePast:
    def test_at_rejects_past_after_advance(self):
        sim = Simulator()
        sim.at(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="before now"):
            sim.at(1.999, lambda: None)

    def test_epsilon_past_clamps_to_now(self):
        sim = Simulator()
        sim.at(1.0, lambda: sim.at(sim.now - 1e-13, lambda: None))
        sim.run()
        assert sim.now == 1.0

    def test_after_from_within_event(self):
        sim = Simulator()
        times = []
        sim.at(1.0, lambda: sim.after(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]


class TestPeriodic:
    def test_every_fires_at_period(self):
        sim = Simulator()
        times = []
        sim.every(1.0, lambda: times.append(sim.now))
        sim.run(until=4.5)
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_every_custom_start(self):
        sim = Simulator()
        times = []
        sim.every(2.0, lambda: times.append(sim.now), start=0.5)
        sim.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_cancel_stops_timer(self):
        sim = Simulator()
        times = []
        cancel = sim.every(1.0, lambda: times.append(sim.now))
        sim.at(2.5, cancel)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_bad_period(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)

    def test_two_timers_at_equal_timestamps_fire_in_install_order(self):
        # timers that collide (period 1.0 vs 0.5 starting at 0.5) must fire
        # in the order they were installed, at every shared timestamp
        sim = Simulator()
        log = []
        sim.every(1.0, lambda: log.append("a"))
        sim.every(0.5, lambda: log.append("b"), start=0.5)
        sim.run(until=3.0)
        # at t=1,2,3 both fire; 'a' was installed first so it leads, and
        # rescheduling preserves that seq ordering forever
        assert log == ["b", "a", "b", "b", "a", "b", "b", "a", "b"]

    def test_every_and_at_tie_order(self):
        sim = Simulator()
        log = []
        sim.every(1.0, lambda: log.append("timer"))
        sim.at(1.0, lambda: log.append("oneshot"))
        sim.run(until=1.0)
        assert log == ["timer", "oneshot"]

    def test_cascading_events_deterministic(self):
        # two runs with identical schedules produce identical traces
        def build():
            sim = Simulator()
            log = []

            def tick(depth):
                log.append((round(sim.now, 6), depth))
                if depth < 3:
                    sim.after(0.1, lambda: tick(depth + 1))
                    sim.after(0.2, lambda: tick(depth + 1))

            sim.at(0.0, lambda: tick(0))
            sim.run()
            return log

        assert build() == build()
