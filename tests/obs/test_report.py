"""Tests for the obs-report dashboard renderer and its CLI."""

from __future__ import annotations

from repro.obs import NdjsonSink, Telemetry
from repro.obs.report import main, render_dashboard


def _sample_records():
    return [
        {
            "type": "snapshot",
            "counters": {"kernel.dense_rounds": 12},
            "gauges": {"kernel.frontier_size": 7.0},
            "phases": {"kernel.round/gather": {"seconds": 0.5, "count": 10}},
            "histograms": {
                "cluster.tick_seconds": {
                    "count": 3, "mean": 0.1, "min": 0.05,
                    "max": 0.2, "p50": 0.1, "p95": 0.2,
                }
            },
            "spans_recorded": 2,
        },
        {"type": "span", "kind": "request", "outcome": "served",
         "response_time": 1.5, "hops": 2, "served_by": 3},
        {"type": "span", "kind": "request", "outcome": "shed",
         "response_time": None, "hops": 0, "served_by": None},
        {"type": "cluster_snapshot", "tick": 5, "documents": 10,
         "total_rate": 100.0, "mass": 100.0, "frozen_fraction": 0.4},
    ]


class TestRenderDashboard:
    def test_sections_present(self):
        text = render_dashboard(_sample_records())
        assert "records: 4 (snapshots=1, spans=2, cluster=1, other=0)" in text
        assert "kernel.dense_rounds" in text
        assert "kernel.frontier_size" in text
        assert "kernel.round/gather" in text
        assert "cluster.tick_seconds" in text
        assert "outcomes: served=1, shed=1" in text
        assert "top servers: node 3: 1" in text
        assert "Cluster records" in text

    def test_empty_stream(self):
        text = render_dashboard([])
        assert "(empty stream)" in text

    def test_latest_snapshot_wins(self):
        records = [
            {"type": "snapshot", "counters": {"old": 1}},
            {"type": "snapshot", "counters": {"new": 2}},
        ]
        text = render_dashboard(records)
        assert "new" in text
        assert "old" not in text

    def test_renders_real_export(self):
        tel = Telemetry()
        tel.count("kernel.rounds", 9)
        tel.span("request", req_id=0, outcome="served",
                 response_time=0.5, hops=1, served_by=0)
        text = render_dashboard([tel.snapshot(), *tel.spans])
        assert "kernel.rounds" in text
        assert "Spans: 1" in text


class TestCli:
    def test_renders_stream(self, tmp_path, capsys):
        path = tmp_path / "t.ndjson"
        with NdjsonSink(str(path)) as sink:
            tel = Telemetry(sink)
            tel.count("kernel.rounds", 3)
            tel.export()
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "kernel.rounds" in out
        assert str(path) in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent.ndjson")]) == 2
        err = capsys.readouterr().err
        assert "cannot read telemetry stream" in err

    def test_no_rotated_flag(self, tmp_path, capsys):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(str(path), rotate_bytes=1, flush_every=1)
        sink.write({"type": "span", "kind": "request"})
        sink.close()
        assert main([str(path), "--no-rotated"]) == 0
        out = capsys.readouterr().out
        assert "spans=0" in out  # the only span lives in the rotated part
