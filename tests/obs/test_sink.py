"""Tests for the ndjson sink: serialization, rotation, read-back."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import MemorySink, NdjsonSink, read_ndjson
from repro.obs.sink import scan_ndjson


class TestMemorySink:
    def test_round_trips_through_json(self):
        sink = MemorySink()
        sink.write({"type": "span", "x": np.float64(1.5), "n": np.int64(3)})
        assert sink.records == [{"type": "span", "x": 1.5, "n": 3}]

    def test_surfaces_unserializable(self):
        sink = MemorySink()
        with pytest.raises(TypeError):
            sink.write({"bad": object()})


class TestNdjsonSink:
    def test_one_record_per_line(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with NdjsonSink(str(path)) as sink:
            sink.write({"a": 1})
            sink.write({"b": np.float64(2.5)})
        lines = path.read_text().splitlines()
        assert [json.loads(l) for l in lines] == [{"a": 1}, {"b": 2.5}]
        assert sink.records_written == 2

    def test_numpy_arrays_become_lists(self, tmp_path):
        path = tmp_path / "t.ndjson"
        with NdjsonSink(str(path)) as sink:
            sink.write({"totals": np.arange(3, dtype=np.float64)})
        assert json.loads(path.read_text())["totals"] == [0.0, 1.0, 2.0]

    def test_rotation_shifts_parts_and_drops_oldest(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(str(path), rotate_bytes=1, max_parts=2, flush_every=1)
        for i in range(5):  # every record triggers a rotation
            sink.write({"i": i})
        sink.close()
        assert sink.rotations == 5
        # live file is empty (just rotated); parts hold the newest two
        assert (tmp_path / "t.ndjson.1").exists()
        assert (tmp_path / "t.ndjson.2").exists()
        assert not (tmp_path / "t.ndjson.3").exists()
        assert json.loads((tmp_path / "t.ndjson.1").read_text())["i"] == 4
        assert json.loads((tmp_path / "t.ndjson.2").read_text())["i"] == 3

    def test_rejects_bad_parameters(self, tmp_path):
        path = str(tmp_path / "t.ndjson")
        with pytest.raises(ValueError):
            NdjsonSink(path, rotate_bytes=0)
        with pytest.raises(ValueError):
            NdjsonSink(path, max_parts=0)


class TestReadNdjson:
    def test_reads_rotated_parts_oldest_first(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(str(path), rotate_bytes=1, max_parts=4, flush_every=1)
        for i in range(3):
            sink.write({"i": i})
        sink.close()
        records = read_ndjson(str(path))
        assert [r["i"] for r in records] == [0, 1, 2]

    def test_without_rotated_reads_live_only(self, tmp_path):
        path = tmp_path / "t.ndjson"
        sink = NdjsonSink(str(path), rotate_bytes=1, max_parts=4, flush_every=1)
        sink.write({"i": 0})
        sink.close()
        with NdjsonSink(str(path)) as live:  # fresh live file, no rotation
            live.write({"i": 1})
        # rotated part still on disk from the first sink
        assert read_ndjson(str(path), include_rotated=False) == [{"i": 1}]

    def test_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.ndjson"
        path.write_text('{"ok": 1}\n\nnot json\n{"ok": 2}\n{"trunc')
        assert read_ndjson(str(path)) == [{"ok": 1}, {"ok": 2}]

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_ndjson(str(tmp_path / "absent.ndjson"))


class TestScanNdjson:
    def test_counts_skipped_corrupt_lines(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text('{"ok": 1}\n{"cut": tr\n{"ok": 2}\nnot json at all\n')
        records, skipped = scan_ndjson(str(path))
        assert records == [{"ok": 1}, {"ok": 2}]
        assert skipped == 2

    def test_clean_stream_has_zero_skipped(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        with NdjsonSink(str(path)) as sink:
            sink.write({"i": 1})
            sink.write({"i": 2})
        records, skipped = scan_ndjson(str(path))
        assert len(records) == 2 and skipped == 0

    def test_skipped_spans_rotated_parts(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        (tmp_path / "stream.ndjson.1").write_text('{"old": 1}\ngarbage\n')
        path.write_text('{"new": 1}\ntruncat')
        records, skipped = scan_ndjson(str(path))
        assert records == [{"old": 1}, {"new": 1}]
        assert skipped == 2

    def test_read_ndjson_delegates_and_stays_lenient(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text('{"ok": 1}\npartial li')
        assert read_ndjson(str(path)) == [{"ok": 1}]
