"""Unit tests for the telemetry registry and its instruments."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import (
    NULL,
    Histogram,
    MemorySink,
    NullTelemetry,
    Sampler,
    Telemetry,
    current,
    log_bucket_edges,
    resolve,
    use,
)


class TestCountersAndGauges:
    def test_counter_accumulates(self):
        tel = Telemetry()
        tel.count("kernel.rounds")
        tel.count("kernel.rounds", 4)
        assert tel.counter("kernel.rounds").value == 5

    def test_counter_cached_by_name(self):
        tel = Telemetry()
        assert tel.counter("a") is tel.counter("a")
        assert tel.counter("a") is not tel.counter("b")

    def test_gauge_last_value_wins(self):
        tel = Telemetry()
        tel.gauge_set("frontier", 10.0)
        tel.gauge_set("frontier", 3.0)
        assert tel.gauge("frontier").value == 3.0


class TestHistogram:
    def test_tracks_exact_moments(self):
        h = Histogram("t", edges=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.min == 0.5
        assert h.max == 500.0
        assert h.mean == pytest.approx(555.5 / 4)
        # one observation per bucket, including under- and overflow
        assert h.counts.tolist() == [1, 1, 1, 1]

    def test_quantiles_bucket_resolution(self):
        h = Histogram("t", edges=(1.0, 10.0, 100.0))
        for _ in range(99):
            h.observe(0.5)
        h.observe(50.0)
        assert h.quantile(0.0) == 0.5
        assert h.quantile(1.0) == 50.0
        assert h.quantile(0.5) == 1.0  # upper edge of the holding bucket
        assert h.quantile(0.999) == 100.0

    def test_empty_summary(self):
        h = Histogram("t")
        s = h.summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert s["min"] == 0.0 and s["max"] == 0.0

    def test_default_log_edges_cover_micro_to_seconds(self):
        edges = log_bucket_edges()
        assert edges[0] == pytest.approx(1e-6)
        assert edges[-1] == pytest.approx(10.0)
        assert np.all(np.diff(edges) > 0)

    @given(st.lists(st.floats(1e-7, 1e2), min_size=1, max_size=50))
    def test_counts_always_sum_to_count(self, values):
        h = Histogram("t")
        for v in values:
            h.observe(v)
        assert int(h.counts.sum()) == h.count == len(values)


class TestSampler:
    def test_admits_first_then_every_interval(self):
        s = Sampler(3)
        hits = [s.hit() for _ in range(7)]
        assert hits == [True, False, False, True, False, False, True]

    def test_interval_one_admits_all(self):
        s = Sampler(1)
        assert all(s.hit() for _ in range(5))

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Sampler(0)
        with pytest.raises(ValueError):
            Telemetry(sample_interval=0)


class TestPhases:
    def test_nested_paths_accumulate_separately(self):
        tel = Telemetry()
        with tel.phase("tick"):
            with tel.phase("merge"):
                pass
        with tel.phase("tick"):
            pass
        phases = tel.snapshot()["phases"]
        assert phases["tick"]["count"] == 2
        assert phases["tick/merge"]["count"] == 1

    def test_phase_add_direct(self):
        tel = Telemetry()
        tel.phase_add("kernel.round/gather", 0.25)
        tel.phase_add("kernel.round/gather", 0.75)
        p = tel._phases["kernel.round/gather"]
        assert p.count == 2
        assert p.seconds == pytest.approx(1.0)
        assert p.mean_seconds == pytest.approx(0.5)


class TestSpansAndExport:
    def test_span_buffered_and_streamed(self):
        sink = MemorySink()
        tel = Telemetry(sink, max_spans=2)
        for i in range(4):
            tel.span("request", req_id=i)
        assert len(tel.spans) == 2  # buffer capped ...
        assert tel.spans_dropped == 2
        assert len(sink.records) == 4  # ... but the stream got all four
        assert tel.snapshot()["spans_recorded"] == 4

    def test_export_writes_snapshot_to_sink(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        tel.count("a", 3)
        record = tel.export(plane="rate")
        assert record["counters"] == {"a": 3}
        assert record["plane"] == "rate"
        assert sink.records[-1]["type"] == "snapshot"
        assert tel.snapshots_exported == 1

    def test_snapshot_is_json_ready(self):
        import json

        tel = Telemetry()
        tel.count("c")
        tel.gauge_set("g", 1.5)
        tel.observe("h", 0.01)
        tel.phase_add("p", 0.1)
        json.dumps(tel.snapshot())  # must not raise


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        tel = NullTelemetry()
        assert tel.enabled is False
        tel.count("a")
        tel.gauge_set("g", 1.0)
        tel.observe("h", 1.0)
        tel.span("request", req_id=0)
        with tel.phase("tick"):
            pass
        assert tel.snapshot() == {}
        assert tel.export() == {}

    def test_instruments_are_shared_noops(self):
        tel = NullTelemetry()
        c = tel.counter("a")
        assert c is tel.counter("b")
        c.add(5)
        assert c.value == 0
        g = tel.gauge("g")
        g.set(2.0)
        assert g.value == 0.0
        assert tel.sampler("s").hit() is False

    def test_null_histogram_ignores_observations(self):
        tel = NullTelemetry()
        h = tel.histogram("h")
        h.observe(1.0)
        assert h.count == 0


class TestAmbient:
    def test_default_is_null(self):
        assert current() is NULL
        assert resolve(None) is NULL

    def test_use_installs_and_restores(self):
        tel = Telemetry()
        assert resolve(None) is NULL
        with use(tel) as active:
            assert active is tel
            assert current() is tel
            assert resolve(None) is tel
        assert current() is NULL

    def test_explicit_registry_beats_ambient(self):
        ambient, explicit = Telemetry(), Telemetry()
        with use(ambient):
            assert resolve(explicit) is explicit

    def test_use_nests(self):
        a, b = Telemetry(), Telemetry()
        with use(a):
            with use(b):
                assert current() is b
            assert current() is a
        assert current() is NULL
