"""Telemetry parity: enabled vs disabled runs are bit-identical.

The structural guarantee (telemetry only *reads* plane state) checked
end to end on all three planes, hypothesis-driven where runs are cheap:
an instrumented run and an un-instrumented run of the same workload must
produce the exact same trajectory, while the instrumented run must have
actually recorded something (so these tests cannot pass vacuously).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import random

from repro.cluster.runtime import ClusterRuntime
from repro.cluster.scenarios import rerooted_trees
from repro.core.kernel import (
    AsyncEngine,
    ForestEngine,
    SyncEngine,
    degree_edge_alphas,
    flatten,
)
from repro.core.tree import kary_tree
from repro.obs import MemorySink, Telemetry
from repro.protocols.scenario import ScenarioConfig
from repro.protocols.webwave import WebWaveScenario
from repro.traffic.workload import hot_document_workload
from repro.documents.catalog import Catalog

from tests.helpers import trees_with_rates


class TestRatePlaneParity:
    @given(trees_with_rates(min_nodes=2, max_nodes=25),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_sync_engine_bit_identical(self, tree_rates, rounds):
        tree, rates = tree_rates
        flat = flatten(tree)
        alphas = degree_edge_alphas(flat)
        tel = Telemetry(sample_interval=1)  # sample every round: worst case

        plain = SyncEngine(flat, rates, rates, alphas)
        instrumented = SyncEngine(flat, rates, rates, alphas, telemetry=tel)
        for _ in range(rounds):
            plain.step()
            instrumented.step()

        assert np.array_equal(plain.loads, instrumented.loads)
        assert plain.round == instrumented.round
        assert plain.converged == instrumented.converged
        counters = tel.snapshot()["counters"]
        assert (
            counters.get("kernel.dense_rounds", 0)
            + counters.get("kernel.sparse_rounds", 0)
        ) == rounds

    @given(trees_with_rates(min_nodes=2, max_nodes=20),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_dense_engine_bit_identical(self, tree_rates, rounds):
        tree, rates = tree_rates
        flat = flatten(tree)
        alphas = degree_edge_alphas(flat)
        tel = Telemetry(sample_interval=1)

        plain = SyncEngine(flat, rates, rates, alphas, adaptive=False)
        instrumented = SyncEngine(
            flat, rates, rates, alphas, adaptive=False, telemetry=tel
        )
        for _ in range(rounds):
            plain.step()
            instrumented.step()

        assert np.array_equal(plain.loads, instrumented.loads)
        assert tel.snapshot()["counters"]["kernel.dense_rounds"] == rounds

    def test_async_engine_bit_identical(self):
        tree = kary_tree(2, 4)
        flat = flatten(tree)
        rates = [float(i % 7) for i in range(tree.n)]
        alphas = degree_edge_alphas(flat)
        tel = Telemetry()
        order = [(i * 13 + 5) % tree.n for i in range(200)]

        plain = AsyncEngine(flat, rates, rates, alphas, random.Random(3))
        instrumented = AsyncEngine(
            flat, rates, rates, alphas, random.Random(3), telemetry=tel
        )
        for node in order:
            plain.activate(node)
            instrumented.activate(node)

        assert np.array_equal(plain.loads, instrumented.loads)
        assert tel.snapshot()["counters"]["kernel.async_activations"] == 200

    def test_forest_engine_bit_identical(self):
        base = kary_tree(2, 3)
        trees = rerooted_trees(base, [base.root, 3])
        flats = {h: flatten(t) for h, t in trees.items()}
        demands = {
            h: [float((i * 3 + h) % 5) for i in range(base.n)] for h in trees
        }
        alphas = {h: degree_edge_alphas(flats[h]) for h in trees}
        tel = Telemetry()

        plain = ForestEngine(flats, demands, alphas)
        instrumented = ForestEngine(flats, demands, alphas, telemetry=tel)
        for _ in range(40):
            plain.step()
            instrumented.step()

        assert np.array_equal(plain.total_loads(), instrumented.total_loads())
        assert tel.snapshot()["counters"]["kernel.forest_rounds"] == 40


class TestClusterPlaneParity:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=15))
    @settings(max_examples=15, deadline=None)
    def test_runtime_bit_identical(self, documents, ticks):
        tree = kary_tree(2, 3)
        sink = MemorySink()
        tel = Telemetry(sink, sample_interval=1)

        def build(telemetry):
            runtime = ClusterRuntime({tree.root: tree}, telemetry=telemetry)
            for d in range(documents):
                rates = [float((i + d) % 4) for i in range(tree.n)]
                runtime.publish(f"doc{d}", tree.root, rates)
            return runtime

        plain, instrumented = build(None), build(tel)
        for _ in range(ticks):
            plain.tick()
            instrumented.tick()

        for d in range(documents):
            assert np.array_equal(
                plain.document_loads(f"doc{d}"),
                instrumented.document_loads(f"doc{d}"),
            )
        counters = tel.snapshot()["counters"]
        assert counters["cluster.ticks"] == ticks

    def test_snapshot_streams_identical_record(self):
        tree = kary_tree(2, 3)
        sink = MemorySink()
        tel = Telemetry(sink)
        plain = ClusterRuntime({tree.root: tree})
        instrumented = ClusterRuntime({tree.root: tree}, telemetry=tel)
        for runtime in (plain, instrumented):
            runtime.publish("d", tree.root, [1.0] * tree.n)
            runtime.tick()
        snap_plain, snap_inst = plain.snapshot(), instrumented.snapshot()
        assert snap_plain == snap_inst
        assert sink.records[-1] == snap_inst.to_record()


class TestPacketPlaneParity:
    @pytest.mark.parametrize("height", [2, 3])
    def test_webwave_scenario_bit_identical(self, height):
        tree = kary_tree(2, height)
        catalog = Catalog.generate(home=tree.root, count=4)
        rates = [0.0] * tree.n
        for leaf in tree.leaves():
            rates[leaf] = 8.0
        workload = hot_document_workload(tree, catalog, rates, zipf_s=0.9)
        config = ScenarioConfig(
            duration=8.0, warmup=2.0, seed=1, default_capacity=20.0
        )
        tel = Telemetry(sample_interval=1)  # span every request: worst case

        plain = WebWaveScenario(workload, config)
        instrumented = WebWaveScenario(workload, config, telemetry=tel)
        metrics_plain = plain.run()
        metrics_inst = instrumented.run()

        assert metrics_plain.completed == metrics_inst.completed
        assert metrics_plain.generated == metrics_inst.generated
        assert metrics_plain.response_times == metrics_inst.response_times
        assert metrics_plain.hops == metrics_inst.hops
        assert metrics_plain.served_by_node == metrics_inst.served_by_node
        assert metrics_plain.messages == metrics_inst.messages
        # the instrumented run recorded the lifecycle of every request
        assert len(tel.spans) == len(instrumented.requests)
        gauges = tel.snapshot()["gauges"]
        assert gauges["packet.requests_generated"] == len(
            instrumented.requests
        )
        assert gauges["sim.events_executed"] > 0
