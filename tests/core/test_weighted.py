"""Tests for capacity-weighted TLB (repro.core.weighted)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import is_feasible
from repro.core.tree import chain_tree, kary_tree, star_tree
from repro.core.webfold import webfold
from repro.core.weighted import (
    WeightedWebWaveSimulator,
    weighted_webfold,
)

from tests.helpers import trees_with_rates


class TestWeightedWebfold:
    def test_uniform_capacity_reduces_to_webfold(self):
        tree = kary_tree(2, 3)
        rng = random.Random(1)
        rates = [rng.uniform(0, 50) for _ in range(tree.n)]
        weighted = weighted_webfold(tree, rates, [7.0] * tree.n)
        plain = webfold(tree, rates)
        assert weighted.assignment.almost_equal(plain.assignment, tol=1e-8)
        assert set(weighted.folds) == set(plain.folds)

    def test_load_proportional_to_capacity_within_fold(self):
        tree = chain_tree(3)
        # all demand at the leaf; capacities 1:2:3
        result = weighted_webfold(tree, [0, 0, 60], [10.0, 20.0, 30.0])
        loads = result.assignment.served
        # one fold: intensity 60/60 = 1.0, loads = capacities
        assert loads == pytest.approx((10.0, 20.0, 30.0))
        assert result.max_utilization == pytest.approx(1.0)

    def test_utilization_equal_within_fold(self):
        tree = kary_tree(2, 2)
        rng = random.Random(5)
        rates = [rng.uniform(0, 30) for _ in range(tree.n)]
        caps = [rng.uniform(1, 9) for _ in range(tree.n)]
        result = weighted_webfold(tree, rates, caps)
        utils = result.utilizations()
        for fold in result.folds.values():
            values = {round(utils[m], 9) for m in fold.members}
            assert len(values) == 1

    def test_utilization_monotone_root_to_leaf(self):
        tree = kary_tree(3, 2)
        rng = random.Random(7)
        rates = [rng.uniform(0, 30) for _ in range(tree.n)]
        caps = [rng.uniform(1, 9) for _ in range(tree.n)]
        utils = weighted_webfold(tree, rates, caps).utilizations()
        for i in tree:
            parent = tree.parent(i)
            if parent is not None:
                assert utils[parent] >= utils[i] - 1e-9

    def test_feasible(self):
        tree = star_tree(5)
        result = weighted_webfold(tree, [0, 10, 0, 40, 5], [1, 2, 3, 4, 5])
        assert is_feasible(result.assignment)

    def test_validation(self):
        tree = chain_tree(2)
        with pytest.raises(ValueError, match="capacities"):
            weighted_webfold(tree, [1, 1], [1.0])
        with pytest.raises(ValueError, match="positive"):
            weighted_webfold(tree, [1, 1], [1.0, 0.0])

    @given(trees_with_rates(max_nodes=20))
    @settings(max_examples=40)
    def test_feasibility_property(self, tree_rates):
        tree, rates = tree_rates
        rng = random.Random(42)
        caps = [rng.uniform(0.5, 10.0) for _ in range(tree.n)]
        result = weighted_webfold(tree, rates, caps)
        assert is_feasible(result.assignment, tol=1e-6)
        # conservation
        assert result.assignment.total_served == pytest.approx(
            sum(rates), abs=1e-6
        )

    @given(trees_with_rates(max_nodes=20))
    @settings(max_examples=40)
    def test_capacity_scaling_invariance(self, tree_rates):
        """Scaling all capacities leaves the load assignment unchanged."""
        tree, rates = tree_rates
        rng = random.Random(9)
        caps = [rng.uniform(0.5, 10.0) for _ in range(tree.n)]
        a = weighted_webfold(tree, rates, caps)
        b = weighted_webfold(tree, rates, [c * 4.0 for c in caps])
        assert a.assignment.almost_equal(b.assignment, tol=1e-6)


class TestWeightedDiffusion:
    def test_converges_to_weighted_tlb(self):
        tree = kary_tree(2, 2)
        rng = random.Random(3)
        rates = [rng.uniform(0, 40) for _ in range(tree.n)]
        caps = [rng.uniform(1, 8) for _ in range(tree.n)]
        sim = WeightedWebWaveSimulator(tree, rates, caps)
        result = sim.run(max_rounds=30000, tolerance=1e-4)
        assert result.converged
        assert result.final.almost_equal(result.target, tol=0.01)

    def test_conserves_total(self):
        tree = chain_tree(4)
        sim = WeightedWebWaveSimulator(
            tree, [0, 5, 0, 35], [1.0, 2.0, 4.0, 8.0]
        )
        total = sim.assignment().total_served
        for _ in range(50):
            sim.step()
            assert sim.assignment().total_served == pytest.approx(total)

    def test_heavy_node_serves_more(self):
        tree = chain_tree(2)
        # leaf generates 30; root has 9x the capacity of the leaf
        sim = WeightedWebWaveSimulator(tree, [0, 30], [9.0, 1.0])
        result = sim.run(max_rounds=20000, tolerance=1e-5)
        assert result.converged
        assert result.final.served_of(0) == pytest.approx(27.0, abs=0.01)
        assert result.final.served_of(1) == pytest.approx(3.0, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedWebWaveSimulator(chain_tree(2), [1, 1], [1.0])
        with pytest.raises(ValueError):
            WeightedWebWaveSimulator(chain_tree(2), [1, 1], [1.0, -1.0])
