"""Unit tests for repro.core.webfold (example-based; properties separate)."""

from __future__ import annotations

import pytest

from repro.core.load import LoadAssignment
from repro.core.tree import RoutingTree, chain_tree, kary_tree, star_tree
from repro.core.webfold import Fold, FoldResult, fold_partition, webfold


class TestSmallCases:
    def test_single_node(self):
        result = webfold(RoutingTree([0]), [7.0])
        assert result.loads() == (7.0,)
        assert result.num_folds == 1
        assert result.trace == ()

    def test_uniform_rates_single_fold(self):
        tree = kary_tree(2, 2)
        result = webfold(tree, [3.0] * tree.n)
        assert result.is_gle()
        assert all(l == pytest.approx(3.0) for l in result.loads())

    def test_all_zero_rates(self):
        tree = chain_tree(4)
        result = webfold(tree, [0.0] * 4)
        assert result.loads() == (0.0,) * 4
        assert result.trace == ()  # nothing foldable: all loads equal

    def test_chain_hot_leaf(self):
        result = webfold(chain_tree(3), [0, 0, 30])
        assert result.loads() == (10.0, 10.0, 10.0)
        assert result.num_folds == 1

    def test_chain_hot_root(self):
        # demand at the root can never move down (NSS)
        result = webfold(chain_tree(3), [30, 0, 0])
        assert result.loads() == (30.0, 0.0, 0.0)
        assert result.num_folds == 3

    def test_star_one_hot_leaf(self):
        result = webfold(star_tree(3), [0, 0, 30])
        assert result.loads() == (15.0, 0.0, 15.0)
        assert result.fold_of(1).members == (1,)
        assert result.fold_of(0).members == (0, 2)

    def test_middle_hot_node(self):
        result = webfold(chain_tree(3), [0, 30, 0])
        assert result.loads() == (15.0, 15.0, 0.0)

    def test_equal_loads_do_not_merge(self):
        # two siblings each generating exactly twice the mean stay separate
        # folds with equal per-node load (strict inequality in Foldable)
        result = webfold(star_tree(3), [0, 20, 10])
        assert result.loads() == (10.0, 10.0, 10.0)


class TestFoldStructure:
    def test_folds_partition_nodes(self):
        tree = kary_tree(2, 3)
        rates = [float((i * 7) % 13) for i in range(tree.n)]
        result = webfold(tree, rates)
        seen = sorted(m for f in result.folds.values() for m in f.members)
        assert seen == list(range(tree.n))

    def test_folds_are_connected(self):
        tree = kary_tree(2, 3)
        rates = [float((i * 11) % 17) for i in range(tree.n)]
        result = webfold(tree, rates)
        for fold in result.folds.values():
            members = set(fold.members)
            # every member other than the fold root has its parent in-fold
            for m in members:
                if m != fold.root:
                    assert tree.parent_map[m] in members

    def test_fold_root_is_shallowest(self):
        tree = kary_tree(2, 3)
        rates = [float(i % 5) for i in range(tree.n)]
        result = webfold(tree, rates)
        for fold in result.folds.values():
            root_depth = tree.depth(fold.root)
            assert all(tree.depth(m) >= root_depth for m in fold.members)

    def test_fold_load_property(self):
        fold = Fold(root=1, members=(1, 2, 3), spontaneous=30.0)
        assert fold.load == 10.0
        assert fold.size == 3

    def test_fold_of_consistency(self):
        tree = star_tree(4)
        result = webfold(tree, [0, 5, 10, 50])
        for root, fold in result.folds.items():
            for m in fold.members:
                assert result.fold_of(m).root == root

    def test_fold_partition_helper(self):
        partition = fold_partition(chain_tree(3), [0, 0, 30])
        assert partition == {0: (0, 1, 2)}


class TestTrace:
    def test_trace_folds_highest_first(self):
        tree = star_tree(3)
        result = webfold(tree, [0, 10, 40])
        assert result.trace[0].folded == 2  # load 40 folds before load 10

    def test_trace_merged_load_between_endpoints(self):
        tree = kary_tree(2, 3)
        rates = [float((3 * i) % 19) for i in range(tree.n)]
        for step in webfold(tree, rates).trace:
            assert step.into_load < step.merged_load < step.folded_load

    def test_trace_count_equals_merges(self):
        tree = kary_tree(2, 3)
        rates = [float(i) for i in range(tree.n)]
        result = webfold(tree, rates)
        assert len(result.trace) == tree.n - result.num_folds

    def test_describe(self):
        result = webfold(star_tree(2), [0, 10])
        text = result.trace[0].describe()
        assert "fold 1" in text and "fold 0" in text


class TestResultApi:
    def test_assignment_spontaneous_preserved(self, small_tree):
        rates = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = webfold(small_tree, rates)
        assert result.assignment.spontaneous == tuple(rates)

    def test_loads_alias(self, small_tree):
        result = webfold(small_tree, [1] * 5)
        assert result.loads() == result.assignment.served

    def test_fold_roots_sorted(self):
        result = webfold(star_tree(4), [0, 1, 2, 3])
        assert list(result.fold_roots) == sorted(result.fold_roots)

    def test_render_mentions_folds(self, small_tree):
        text = webfold(small_tree, [0, 0, 0, 20, 0]).render()
        assert "fold=" in text

    def test_is_gle_multi_fold_equal_loads(self):
        result = webfold(star_tree(3), [0, 20, 10])
        assert result.num_folds > 1
        assert result.is_gle()  # equal loads across folds still GLE

    def test_total_conservation(self, small_tree):
        rates = [3.0, 1.0, 4.0, 1.0, 5.0]
        result = webfold(small_tree, rates)
        assert result.assignment.total_served == pytest.approx(sum(rates))


class TestDeterminism:
    def test_repeated_runs_identical(self):
        tree = kary_tree(3, 3)
        rates = [float((i * 13) % 23) for i in range(tree.n)]
        a = webfold(tree, rates)
        b = webfold(tree, rates)
        assert a.loads() == b.loads()
        assert a.trace == b.trace

    def test_idempotent_on_tlb_loads(self):
        # folding the TLB loads as new spontaneous rates changes nothing:
        # they are already monotone non-increasing toward the leaves
        tree = kary_tree(2, 3)
        rates = [float((i * 5) % 11) for i in range(tree.n)]
        first = webfold(tree, rates)
        second = webfold(tree, first.loads())
        assert second.assignment.almost_equal(first.assignment)
