"""Tests for WebWave under time-varying rates (repro.core.dynamics)."""

from __future__ import annotations

import random

import pytest

from repro.core.constraints import is_feasible
from repro.core.dynamics import (
    RateSchedule,
    flash_crowd_schedule,
    random_walk_schedule,
    resettle,
    run_tracking,
    step_change_schedule,
)
from repro.core.load import LoadAssignment
from repro.core.tree import chain_tree, kary_tree
from repro.core.webwave import WebWaveConfig


class TestRateSchedule:
    def test_segments_in_force(self):
        schedule = RateSchedule([(0, [1.0, 1.0]), (10, [2.0, 0.0])])
        assert schedule.rates_at(0) == (1.0, 1.0)
        assert schedule.rates_at(9) == (1.0, 1.0)
        assert schedule.rates_at(10) == (2.0, 0.0)
        assert schedule.rates_at(99) == (2.0, 0.0)
        assert schedule.change_points == (10,)

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError, match="round 0"):
            RateSchedule([(5, [1.0])])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            RateSchedule([(0, [1.0]), (5, [1.0, 2.0])])

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            RateSchedule([(0, [-1.0])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RateSchedule([])

    def test_builders(self):
        tree = chain_tree(3)
        s1 = step_change_schedule([1, 1, 1], [9, 0, 0], change_at=5)
        assert s1.change_points == (5,)
        s2 = flash_crowd_schedule(tree, 2.0, crowd_node=2, crowd_rate=50.0, start=10, end=40)
        assert s2.rates_at(20)[2] == 50.0
        assert s2.rates_at(50)[2] == 2.0
        s3 = random_walk_schedule(
            tree, random.Random(1), rounds=100, initial=[5.0, 5.0, 5.0]
        )
        assert len(s3.change_points) == 4

    def test_flash_crowd_validation(self):
        tree = chain_tree(3)
        with pytest.raises(ValueError):
            flash_crowd_schedule(tree, 1.0, crowd_node=9, crowd_rate=5.0, start=1, end=2)
        with pytest.raises(ValueError):
            flash_crowd_schedule(tree, 1.0, crowd_node=1, crowd_rate=5.0, start=5, end=5)


class TestResettle:
    def test_demand_drop_clamps_and_home_absorbs(self):
        tree = chain_tree(3)
        # old state: leaf was serving 10 out of its former demand
        served = [0.0, 0.0, 10.0]
        # new demand: leaf generates only 4
        loads = resettle(tree, [0.0, 0.0, 4.0], served)
        assert loads[2] == 4.0
        assert loads[0] == 0.0
        assert sum(loads) == pytest.approx(4.0)

    def test_demand_rise_home_serves_remainder(self):
        tree = chain_tree(3)
        served = [0.0, 0.0, 10.0]
        loads = resettle(tree, [0.0, 0.0, 25.0], served)
        assert loads[2] == 10.0  # keeps its chosen rate
        assert loads[0] == 15.0  # the home absorbs the new remainder
        assert sum(loads) == pytest.approx(25.0)

    def test_result_always_feasible(self):
        tree = kary_tree(2, 2)
        rng = random.Random(4)
        for _ in range(50):
            rates = [rng.uniform(0, 20) for _ in range(tree.n)]
            served = [rng.uniform(0, 20) for _ in range(tree.n)]
            loads = resettle(tree, rates, served)
            assignment = LoadAssignment(tree, rates, loads)
            assert is_feasible(assignment, tol=1e-9)


class TestTracking:
    def test_recovers_after_step_change(self):
        tree = kary_tree(2, 2)
        base = [4.0] * tree.n
        changed = [0.0] * tree.n
        changed[5] = 60.0
        schedule = step_change_schedule(base, changed, change_at=80)
        result = run_tracking(tree, schedule, rounds=400)
        assert result.final_distance < 1e-3
        assert result.recovery_rounds[80] is not None

    def test_flash_crowd_round_trip(self):
        tree = kary_tree(2, 2)
        schedule = flash_crowd_schedule(
            tree, calm_rate=5.0, crowd_node=6, crowd_rate=80.0, start=60, end=220
        )
        result = run_tracking(tree, schedule, rounds=450)
        # converged after the crowd dissolved
        assert result.final_distance < 1e-2
        # both transitions recovered
        assert all(r is not None for r in result.recovery_rounds.values())

    def test_distances_spike_at_change(self):
        tree = chain_tree(4)
        schedule = step_change_schedule(
            [2.0] * 4, [0.0, 0.0, 0.0, 50.0], change_at=100
        )
        result = run_tracking(tree, schedule, rounds=300)
        before = result.distances[99]
        after = result.distances[101]
        assert after > before

    def test_random_walk_bounded_error(self):
        tree = kary_tree(2, 2)
        schedule = random_walk_schedule(
            tree,
            random.Random(7),
            rounds=300,
            initial=[6.0] * tree.n,
            step_every=40,
            relative_step=0.2,
        )
        result = run_tracking(tree, schedule, rounds=300)
        # tracking error stays bounded well below the offered load
        assert result.mean_tracking_error < sum(schedule.rates_at(0))

    def test_schedule_width_checked(self):
        with pytest.raises(ValueError, match="width"):
            run_tracking(chain_tree(3), RateSchedule([(0, [1.0])]), rounds=10)
