"""Golden parity: the kernel reproduces the legacy per-round trajectories.

``tests/golden/diffusion_goldens.json`` was recorded from the seed
implementation (four independent dict-based round loops) before the
vectorized :mod:`repro.core.kernel` replaced them.  Every case here
re-runs the same fixed-seed scenario through the kernel-backed facades and
asserts the served-load trajectory matches within 1e-9 per node per round.

Regenerate the goldens only for an intentional behaviour change:
``PYTHONPATH=src python tests/golden/generate_goldens.py``.
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.core.async_webwave import AsyncWebWave
from repro.core.dynamics import run_tracking, step_change_schedule
from repro.core.forest import ForestWebWave
from repro.core.tree import RoutingTree
from repro.core.webwave import WebWaveConfig, WebWaveSimulator
from repro.core.weighted import WeightedWebWaveSimulator

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "golden" / "diffusion_goldens.json"
)

TOL = 1e-9


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


def assert_trajectory(observed, expected, label):
    assert len(observed) == len(expected)
    for t, (got, want) in enumerate(zip(observed, expected)):
        assert got == pytest.approx(want, abs=TOL), f"{label}: round {t}"


@pytest.mark.parametrize(
    "case",
    ["webwave_default", "webwave_gossip_quantum", "webwave_unsafe_alpha_initial"],
)
def test_webwave_parity(goldens, case):
    data = goldens[case]
    tree = RoutingTree(data["parent"])
    config = WebWaveConfig(
        alpha=data["config"]["alpha"],
        gossip_delay=data["config"]["gossip_delay"],
        quantum=data["config"]["quantum"],
        unsafe_alpha=data["config"]["unsafe_alpha"],
    )
    sim = WebWaveSimulator(tree, data["rates"], config, data["initial_served"])
    observed = [list(sim.assignment().served)]
    for _ in range(len(data["trajectory"]) - 1):
        sim.step()
        observed.append(list(sim.assignment().served))
    assert_trajectory(observed, data["trajectory"], case)


@pytest.mark.parametrize("case", ["weighted_default", "weighted_fixed_alpha"])
def test_weighted_parity(goldens, case):
    data = goldens[case]
    tree = RoutingTree(data["parent"])
    sim = WeightedWebWaveSimulator(
        tree, data["rates"], data["capacities"], alpha=data["alpha"]
    )
    observed = [list(sim.assignment().served)]
    for _ in range(len(data["trajectory"]) - 1):
        sim.step()
        observed.append(list(sim.assignment().served))
    assert_trajectory(observed, data["trajectory"], case)


def test_forest_parity(goldens):
    data = goldens["forest_two_homes"]
    trees = {int(h): RoutingTree(p) for h, p in data["parents"].items()}
    demands = {int(h): rates for h, rates in data["demands"].items()}
    forest = ForestWebWave(trees, demands, alpha=data["alpha"])
    rounds = len(next(iter(data["trajectories"].values()))) - 1
    observed = {h: [list(forest.tree_assignment(h).served)] for h in forest.homes}
    for _ in range(rounds):
        forest.step()
        for h in forest.homes:
            observed[h].append(list(forest.tree_assignment(h).served))
    for h in forest.homes:
        assert_trajectory(
            observed[h], data["trajectories"][str(h)], f"forest home {h}"
        )


@pytest.mark.parametrize("case", ["async_staleness3", "async_fresh_views"])
def test_async_parity(goldens, case):
    """Trajectory AND the exact RNG consumption pattern must match."""
    data = goldens[case]
    tree = RoutingTree(data["parent"])
    sim = AsyncWebWave(
        tree,
        data["rates"],
        random.Random(data["rng_seed"]),
        alpha=data["alpha"],
        max_staleness=data["max_staleness"],
    )
    observed = [list(sim.assignment().served)]
    for _ in range(len(data["trajectory"]) - 1):
        sim.activate()
        observed.append(list(sim.assignment().served))
    assert_trajectory(observed, data["trajectory"], case)


def test_tracking_parity(goldens):
    data = goldens["tracking_step_change"]
    tree = RoutingTree(data["parent"])
    schedule = step_change_schedule(
        data["base"], data["changed"], change_at=data["change_at"]
    )
    result = run_tracking(tree, schedule, rounds=data["rounds"])
    assert list(result.distances) == pytest.approx(data["distances"], abs=TOL)
    assert {str(k): v for k, v in result.recovery_rounds.items()} == data[
        "recovery_rounds"
    ]
