"""Unit tests for repro.core.constraints."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.constraints import (
    feasible_subtree_slack,
    gle_feasible,
    is_feasible,
    is_gle,
    is_lexmin_feasible,
    is_tlb,
    lex_compare,
    lex_less,
    satisfies_nss,
    satisfies_root_constraint,
)
from repro.core.load import LoadAssignment
from repro.core.tree import chain_tree, star_tree
from repro.core.webfold import webfold

from tests.helpers import trees_with_rates


class TestRootConstraint:
    def test_l_equals_e_satisfies(self, small_tree):
        assert satisfies_root_constraint(LoadAssignment(small_tree, [1] * 5))

    def test_undeserved_load_violates(self, small_tree):
        a = LoadAssignment(small_tree, [1] * 5, [0] * 5)
        assert not satisfies_root_constraint(a)


class TestNss:
    def test_upward_shift_ok(self):
        tree = chain_tree(3)
        # leaf load moved up: A stays >= 0
        a = LoadAssignment(tree, [0, 0, 30], [10, 10, 10])
        assert satisfies_nss(a)

    def test_downward_shift_violates(self):
        tree = chain_tree(3)
        # root's own load pushed to the leaf: leaf serves more than its
        # subtree generates
        a = LoadAssignment(tree, [30, 0, 0], [10, 10, 10])
        assert not satisfies_nss(a)

    def test_slack_equals_forwarded(self, small_tree):
        a = LoadAssignment(small_tree, [5, 1, 2, 8, 0], [4, 2, 2, 8, 0])
        slack = feasible_subtree_slack(a)
        for i in small_tree:
            assert slack[i] == pytest.approx(a.forwarded_of(i))


class TestFeasibility:
    def test_identity_assignment_feasible(self, small_tree):
        assert is_feasible(LoadAssignment(small_tree, [1, 2, 3, 4, 5]))

    def test_infeasible_totals(self, small_tree):
        a = LoadAssignment(small_tree, [1] * 5, [2] * 5)
        assert not is_feasible(a)

    @given(trees_with_rates(max_nodes=15))
    def test_webfold_output_always_feasible(self, tree_rates):
        tree, rates = tree_rates
        assert is_feasible(webfold(tree, rates).assignment)


class TestGle:
    def test_uniform_is_gle(self, small_tree):
        assert is_gle(LoadAssignment(small_tree, [2] * 5))

    def test_non_uniform_is_not(self, small_tree):
        assert not is_gle(LoadAssignment(small_tree, [1, 2, 3, 4, 0]))

    def test_gle_feasible_uniform_rates(self, small_tree):
        assert gle_feasible(small_tree, [5] * 5)

    def test_gle_infeasible_empty_subtree(self):
        # star with all demand at the root: leaves can never share it
        tree = star_tree(3)
        assert not gle_feasible(tree, [30, 0, 0])

    def test_gle_feasible_heavy_leaves(self):
        tree = star_tree(3)
        assert gle_feasible(tree, [0, 15, 15])


class TestLexOrder:
    def test_identical(self):
        assert lex_compare([3, 1, 2], [2, 1, 3]) == 0

    def test_smaller_max_wins(self):
        assert lex_compare([2, 2, 2], [3, 0, 0]) == -1
        assert lex_less([2, 2, 2], [3, 0, 0])

    def test_tie_broken_by_second(self):
        assert lex_compare([3, 1, 0], [3, 2, 0]) == -1

    def test_worse(self):
        assert lex_compare([5, 0], [4, 1]) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            lex_compare([1], [1, 2])


class TestIsTlb:
    def test_webfold_is_tlb(self, small_tree):
        rates = [0.0, 10.0, 0.0, 20.0, 20.0]
        assert is_tlb(webfold(small_tree, rates).assignment)

    def test_identity_usually_not_tlb(self):
        tree = chain_tree(3)
        a = LoadAssignment(tree, [0, 0, 30])
        assert not is_tlb(a)

    def test_infeasible_not_tlb(self, small_tree):
        a = LoadAssignment(small_tree, [1] * 5, [5] * 5)
        assert not is_tlb(a)


class TestLexminFeasible:
    def test_accepts_optimum_against_competitors(self):
        tree = chain_tree(3)
        rates = [0.0, 0.0, 30.0]
        optimum = webfold(tree, rates).assignment
        competitors = [[0, 0, 30], [15, 15, 0], [5, 5, 20]]
        assert is_lexmin_feasible(optimum, competitors)

    def test_rejects_suboptimal(self):
        tree = chain_tree(3)
        rates = [0.0, 0.0, 30.0]
        suboptimal = LoadAssignment(tree, rates, [5, 5, 20])
        # the true optimum (10,10,10) beats it
        assert not is_lexmin_feasible(suboptimal, [[10, 10, 10]])

    def test_infeasible_competitors_ignored(self):
        tree = chain_tree(3)
        rates = [30.0, 0.0, 0.0]
        optimum = webfold(tree, rates).assignment  # (30, 0, 0) forced
        # (10,10,10) would beat it but is NSS-infeasible here
        assert is_lexmin_feasible(optimum, [[10, 10, 10]])
