"""Tests for the Section 2 diffusion substrate."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.diffusion import (
    Graph,
    asynchronous_diffusion,
    diffusion_matrix,
    metropolis_weights,
    spectral_gamma,
    synchronous_diffusion,
    uniform_weights,
)
from repro.core.tree import chain_tree, kary_tree


def path_graph(n: int) -> Graph:
    return Graph(n, [(i, i + 1) for i in range(n - 1)])


class TestGraph:
    def test_basic(self):
        g = path_graph(3)
        assert g.n == 3
        assert g.neighbors(1) == (0, 2)
        assert g.degree(0) == 1
        assert g.edges == ((0, 1), (1, 2))

    def test_duplicate_edges_merged(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert len(g.edges) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Graph(2, [(0, 5)])

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            Graph(0, [])

    def test_connectivity(self):
        assert path_graph(4).is_connected()
        assert not Graph(3, [(0, 1)]).is_connected()

    def test_from_tree(self):
        g = Graph.from_tree(chain_tree(4))
        assert g.edges == ((0, 1), (1, 2), (2, 3))


class TestWeightsAndMatrix:
    def test_metropolis_symmetric_stochastic(self):
        g = Graph.from_tree(kary_tree(3, 2))
        d = diffusion_matrix(g, metropolis_weights(g))
        assert np.allclose(d, d.T)
        assert np.allclose(d.sum(axis=1), 1.0)
        assert np.all(np.diag(d) >= 0)

    def test_metropolis_weight_value(self):
        g = path_graph(3)
        w = metropolis_weights(g)
        # middle node has degree 2: weight 1/(2+1)
        assert w[(0, 1)] == pytest.approx(1.0 / 3.0)

    def test_uniform_weights(self):
        g = path_graph(3)
        w = uniform_weights(g, 0.25)
        assert all(v == 0.25 for v in w.values())

    def test_uniform_weights_invalid(self):
        with pytest.raises(ValueError):
            uniform_weights(path_graph(2), 0.0)

    def test_unstable_alpha_negative_diagonal(self):
        g = Graph.from_tree(kary_tree(4, 1))  # star, hub degree 4
        d = diffusion_matrix(g, uniform_weights(g, 0.5))
        assert d[0, 0] < 0  # Cybenko's condition violated


class TestSpectralGamma:
    def test_two_nodes(self):
        g = path_graph(2)
        # D = [[1/2, 1/2], [1/2, 1/2]] -> eigenvalues 1, 0
        d = diffusion_matrix(g, metropolis_weights(g))
        assert spectral_gamma(d) == pytest.approx(0.0, abs=1e-12)

    def test_single_node(self):
        d = diffusion_matrix(Graph(1, []))
        assert spectral_gamma(d) == 0.0

    def test_in_unit_interval(self):
        g = Graph.from_tree(kary_tree(2, 3))
        gamma = spectral_gamma(diffusion_matrix(g))
        assert 0.0 < gamma < 1.0

    def test_longer_paths_converge_slower(self):
        gammas = [
            spectral_gamma(diffusion_matrix(path_graph(n))) for n in (4, 8, 16)
        ]
        assert gammas[0] < gammas[1] < gammas[2]


class TestSynchronous:
    def test_converges_to_uniform(self):
        g = path_graph(5)
        trace = synchronous_diffusion(g, [100, 0, 0, 0, 0], tolerance=1e-8)
        assert trace.converged
        assert np.allclose(trace.final, 20.0, atol=1e-6)

    def test_conserves_total(self):
        g = Graph.from_tree(kary_tree(2, 2))
        initial = [float(i) for i in range(g.n)]
        trace = synchronous_diffusion(g, initial, max_iterations=50, tolerance=0.0)
        for x in trace.loads:
            assert x.sum() == pytest.approx(sum(initial))

    def test_distance_contraction_bounded_by_gamma(self):
        g = path_graph(6)
        w = metropolis_weights(g)
        gamma = spectral_gamma(diffusion_matrix(g, w))
        trace = synchronous_diffusion(g, [60, 0, 0, 0, 0, 0], w, tolerance=1e-10)
        for earlier, later in zip(trace.distances, trace.distances[1:]):
            if earlier > 1e-12:
                assert later <= gamma * earlier + 1e-9

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            synchronous_diffusion(path_graph(3), [1.0])

    def test_iterations_property(self):
        g = path_graph(3)
        trace = synchronous_diffusion(g, [3, 0, 0], max_iterations=7, tolerance=0.0)
        assert trace.iterations == 7


class TestAsynchronous:
    def test_converges(self):
        g = path_graph(5)
        rng = random.Random(42)
        trace = asynchronous_diffusion(
            g, [100, 0, 0, 0, 0], rng, tolerance=1e-6, max_iterations=50_000
        )
        assert trace.converged
        assert np.allclose(trace.final, 20.0, atol=1e-4)

    def test_converges_with_bounded_delay(self):
        g = Graph.from_tree(kary_tree(2, 2))
        rng = random.Random(7)
        trace = asynchronous_diffusion(
            g,
            [70, 0, 0, 0, 0, 0, 0],
            rng,
            max_delay=3,
            tolerance=1e-5,
            max_iterations=200_000,
        )
        assert trace.converged

    def test_conserves_total(self):
        g = path_graph(4)
        rng = random.Random(1)
        trace = asynchronous_diffusion(
            g, [4, 3, 2, 1], rng, max_iterations=500, tolerance=0.0
        )
        assert trace.final.sum() == pytest.approx(10.0)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            asynchronous_diffusion(path_graph(3), [1.0], random.Random(0))
