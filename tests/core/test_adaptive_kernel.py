"""Active-set (adaptive) stepping: bit-exact parity and frontier invariants.

The sparse round path of :class:`repro.core.kernel.SyncEngine` must be
**bit-identical** to the dense path - not close, identical - because the
frontier rule only ever skips edges whose transfer is exactly zero and
whose inputs stopped changing.  These tests pin that contract:

* dense-vs-sparse parity on random trees and random demand, through
  mid-run demand flips (``resettle``) and ``reset_state`` swaps;
* identical convergence round counts (trivially implied by bit-identity,
  asserted explicitly because the perf claims quote round counts);
* frontier invariants: an empty frontier means stepping is a bitwise
  no-op forever (the floating-point fixed point), and fixed points are
  actually *reached* - by NSS-blocked demand, by dyadic equalization,
  and by plain long-running diffusion;
* the automatic dense fallback: demand touching more than the density
  threshold's worth of the tree keeps the engine on the tracked dense
  path, with no behavioural difference.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import (
    batch_incident_edges,
    csr_gather,
    incident_edge_csr,
    incident_edges_of,
    sorted_unique,
)
from repro.core.kernel import (
    AsyncEngine,
    SyncEngine,
    degree_edge_alphas,
    flatten,
)
from repro.core.tree import RoutingTree, chain_tree, kary_tree, random_tree

from tests.helpers import trees_with_rates


def _engine_pair(flat, rates, served=None, **kwargs):
    served = rates if served is None else served
    alphas = degree_edge_alphas(flat)
    sparse = SyncEngine(flat, rates, served, alphas, **kwargs)
    dense = SyncEngine(flat, rates, served, alphas, adaptive=False, **kwargs)
    return sparse, dense


def _assert_parity(sparse, dense, rounds):
    for r in range(rounds):
        sparse.step()
        dense.step()
        assert np.array_equal(sparse.loads, dense.loads), f"round {r}"


# ----------------------------------------------------------------------
# Dense-vs-sparse parity
# ----------------------------------------------------------------------
class TestSparseDenseParity:
    @given(trees_with_rates(min_nodes=2, max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_trajectories(self, tree_rates):
        tree, rates = tree_rates
        sparse, dense = _engine_pair(flatten(tree), rates)
        _assert_parity(sparse, dense, 60)

    @given(
        trees_with_rates(min_nodes=2, max_nodes=30),
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=30,
            max_size=30,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_mid_run_demand_flip(self, tree_rates, flip_rates):
        """resettle (a demand flip) resets the frontier; parity survives."""
        tree, rates = tree_rates
        sparse, dense = _engine_pair(flatten(tree), rates)
        _assert_parity(sparse, dense, 20)
        new_rates = flip_rates[: tree.n]
        sparse.resettle(new_rates)
        dense.resettle(new_rates)
        assert np.array_equal(sparse.loads, dense.loads)
        _assert_parity(sparse, dense, 40)

    @given(trees_with_rates(min_nodes=2, max_nodes=30))
    @settings(max_examples=20, deadline=None)
    def test_reset_state_parity(self, tree_rates):
        """A reset_state swap (set_rates at the rate level) stays exact."""
        tree, rates = tree_rates
        sparse, dense = _engine_pair(flatten(tree), rates)
        _assert_parity(sparse, dense, 15)
        doubled = [2.0 * r for r in rates]
        sparse.reset_state(doubled, rates)
        dense.reset_state(doubled, rates)
        _assert_parity(sparse, dense, 40)

    def test_capacity_variant_parity(self):
        rng = random.Random(11)
        tree = random_tree(60, rng)
        rates = [rng.uniform(0.0, 30.0) for _ in range(60)]
        caps = [rng.uniform(1.0, 10.0) for _ in range(60)]
        flat = flatten(tree)
        sparse, dense = _engine_pair(flat, rates, capacities=caps)
        _assert_parity(sparse, dense, 120)

    def test_quantized_variant_parity(self):
        rng = random.Random(13)
        tree = random_tree(40, rng)
        rates = [float(rng.randrange(0, 40)) for _ in range(40)]
        sparse, dense = _engine_pair(flatten(tree), rates, quantum=0.25)
        _assert_parity(sparse, dense, 120)

    def test_gossip_delay_forces_dense(self):
        """Historical views disable the frontier: both engines run dense."""
        rng = random.Random(5)
        tree = random_tree(25, rng)
        rates = [rng.uniform(0.0, 10.0) for _ in range(25)]
        sparse, dense = _engine_pair(flatten(tree), rates, gossip_delay=2)
        assert not sparse.adaptive
        _assert_parity(sparse, dense, 60)

    def test_identical_convergence_round_counts(self):
        """Both paths cross a distance threshold on the same round."""
        from repro.core.webfold import webfold

        rng = random.Random(3)
        tree = random_tree(80, rng)
        rates = [rng.uniform(0.0, 50.0) for _ in range(80)]
        target = np.asarray(
            webfold(tree, rates).assignment.served, dtype=np.float64
        )
        sparse, dense = _engine_pair(flatten(tree), rates)
        threshold = sparse.distance_to(target) * 1e-3

        def rounds_to(engine):
            while engine.distance_to(target) > threshold and engine.round < 20000:
                engine.step()
            return engine.round

        assert rounds_to(sparse) == rounds_to(dense)
        assert np.array_equal(sparse.loads, dense.loads)


# ----------------------------------------------------------------------
# Frontier invariants
# ----------------------------------------------------------------------
class TestFrontierInvariants:
    def test_empty_frontier_is_fixed_point(self):
        """frontier empty => stepping changes nothing, frontier stays empty."""
        tree = chain_tree(2)
        flat = flatten(tree)
        engine = SyncEngine(flat, [0.0, 4.0], [0.0, 4.0], degree_edge_alphas(flat))
        while not engine.converged and engine.round < 100:
            engine.step()
        assert engine.converged  # dyadic equalization reaches exact zero
        before = engine.loads.copy()
        for _ in range(10):
            engine.step()
        assert np.array_equal(engine.loads, before)
        assert engine.converged
        assert engine.frontier_size == 0

    def test_nss_blocked_demand_freezes_immediately(self):
        """All demand at the root: NSS caps every edge, frontier empties."""
        tree = kary_tree(2, 3)
        flat = flatten(tree)
        rates = np.zeros(tree.n)
        rates[tree.root] = 8.0
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        engine.step()  # the tracked dense round discovers nothing can move
        assert engine.converged

    def test_general_fixed_point_reached_and_exact(self):
        """Plain diffusion reaches the floating-point fixed point."""
        tree = kary_tree(2, 4)
        flat = flatten(tree)
        leaves = tree.leaves()
        rates = np.zeros(tree.n)
        rates[leaves[0]] = 8.0
        rates[leaves[1]] = 4.0
        sparse, dense = _engine_pair(flat, rates)
        while not sparse.converged and sparse.round < 5000:
            sparse.step()
        assert sparse.converged
        for _ in range(sparse.round):
            dense.step()
        assert np.array_equal(sparse.loads, dense.loads)
        # one more dense round is a bitwise no-op too: the fixed point is
        # a property of the update, not of the frontier bookkeeping
        before = dense.loads.copy()
        dense.step()
        assert np.array_equal(dense.loads, before)

    def test_frontier_nonempty_while_mass_moves(self):
        """converged <=> frontier empty: not converged while loads change."""
        rng = random.Random(2)
        tree = random_tree(30, rng)
        flat = flatten(tree)
        rates = [rng.uniform(1.0, 20.0) for _ in range(30)]
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(25):
            before = engine.loads.copy()
            engine.step()
            if not np.array_equal(engine.loads, before):
                assert not engine.converged
                assert engine.frontier_size > 0

    def test_frontier_shrinks_on_skewed_demand(self):
        """Zero-demand regions drop out of the frontier immediately."""
        tree = kary_tree(2, 6)  # n = 127
        flat = flatten(tree)
        leaves = tree.leaves()
        rates = np.zeros(tree.n)
        # demand confined to the leftmost subtree's leaves
        for leaf in leaves[:8]:
            rates[leaf] = 5.0 + leaf % 3
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(10):
            engine.step()
        # the frontier holds a small neighbourhood of the demand closure,
        # not the tree
        assert 0 < engine.frontier_size < tree.n // 2
        assert engine.step_stats["sparse_rounds"] > 0

    def test_frontier_nodes_cover_active_edges(self):
        rng = random.Random(9)
        tree = random_tree(40, rng)
        flat = flatten(tree)
        rates = [rng.uniform(0.0, 10.0) for _ in range(40)]
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(5):
            engine.step()
        nodes = set(engine.frontier_nodes().tolist())
        active = engine._active
        for e in active.tolist():
            assert int(flat.edge_parent[e]) in nodes
            assert int(flat.edge_child[e]) in nodes


# ----------------------------------------------------------------------
# Dense fallback
# ----------------------------------------------------------------------
class TestDenseFallback:
    def test_dense_fallback_when_demand_touches_most_nodes(self):
        """Demand on >50% of nodes keeps the engine on the dense path."""
        rng = random.Random(21)
        tree = random_tree(200, rng)
        flat = flatten(tree)
        rates = [rng.uniform(1.0, 100.0) for _ in range(200)]  # all nodes hot
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(20):
            engine.step()
        stats = engine.step_stats
        # every round fell back to the tracked dense path automatically
        assert stats["dense_rounds"] == 20
        assert stats["sparse_rounds"] == 0
        assert engine.frontier_size > 0.5 * flat.edge_child.shape[0]
        # and it stays exact
        dense = SyncEngine(
            flat, rates, rates, degree_edge_alphas(flat), adaptive=False
        )
        for _ in range(20):
            dense.step()
        assert np.array_equal(engine.loads, dense.loads)

    def test_density_threshold_zero_forces_dense_forever(self):
        rng = random.Random(22)
        tree = random_tree(30, rng)
        flat = flatten(tree)
        rates = [rng.uniform(0.0, 10.0) for _ in range(30)]
        engine = SyncEngine(
            flat, rates, rates, degree_edge_alphas(flat), density_threshold=-1.0
        )
        for _ in range(30):
            engine.step()
        assert engine.step_stats["sparse_rounds"] == 0

    def test_sparse_engages_below_threshold(self):
        tree = kary_tree(2, 5)
        flat = flatten(tree)
        rates = np.zeros(tree.n)
        rates[tree.leaves()[0]] = 16.0
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        engine.step()  # dense discovery round
        engine.step()
        assert engine.step_stats["sparse_rounds"] >= 1


# ----------------------------------------------------------------------
# Monitoring-path satellites: served_tuple caching, children lists
# ----------------------------------------------------------------------
class TestMonitoringPaths:
    def test_sync_served_tuple_cached_per_round(self):
        rng = random.Random(4)
        tree = random_tree(20, rng)
        flat = flatten(tree)
        rates = [rng.uniform(0.0, 10.0) for _ in range(20)]
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        first = engine.served_tuple()
        assert engine.served_tuple() is first  # cached within the round
        engine.step()
        after = engine.served_tuple()
        assert after is not first
        assert after == tuple(engine.loads.tolist())

    def test_sync_served_tuple_invalidated_by_resettle(self):
        tree = chain_tree(4)
        flat = flatten(tree)
        engine = SyncEngine(
            flat, [1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 4.0], degree_edge_alphas(flat)
        )
        engine.served_tuple()
        engine.resettle([4.0, 3.0, 2.0, 1.0])
        assert engine.served_tuple() == tuple(engine.loads.tolist())

    def test_async_served_tuple_cached_per_activation(self):
        rng = random.Random(6)
        tree = random_tree(15, rng)
        flat = flatten(tree)
        rates = [rng.uniform(0.0, 10.0) for _ in range(15)]
        engine = AsyncEngine(
            flat, rates, rates, degree_edge_alphas(flat), random.Random(0)
        )
        first = engine.served_tuple()
        assert engine.served_tuple() is first
        engine.activate(3)
        assert engine.served_tuple() == tuple(engine.loads.tolist())

    def test_children_lists_cached_on_flat_tree(self):
        tree = kary_tree(3, 3)
        flat = flatten(tree)
        lists = flat.children_lists()
        assert flat.children_lists() is lists
        for i in range(tree.n):
            assert lists[i] == list(tree.children(i))


# ----------------------------------------------------------------------
# Frontier geometry helpers
# ----------------------------------------------------------------------
class TestFrontierHelpers:
    def test_incident_edge_csr_matches_tree(self):
        rng = random.Random(8)
        tree = random_tree(30, rng)
        flat = flatten(tree)
        offsets, ids = incident_edge_csr(flat)
        for i in range(tree.n):
            edges = set(ids[offsets[i] : offsets[i + 1]].tolist())
            expected = set()
            for e, (p, c) in enumerate(zip(flat.edge_parent, flat.edge_child)):
                if i in (p, c):
                    expected.add(e)
            assert edges == expected

    def test_incident_edge_csr_is_cached(self):
        flat = flatten(kary_tree(2, 3))
        assert incident_edge_csr(flat) is incident_edge_csr(flat)

    def test_csr_gather_empty(self):
        flat = flatten(chain_tree(3))
        offsets, ids = incident_edge_csr(flat)
        assert csr_gather(offsets, ids, np.zeros(0, dtype=np.intp)).size == 0

    def test_incident_edges_of_single_node(self):
        flat = flatten(kary_tree(2, 2))
        got = sorted(
            incident_edges_of(flat, np.asarray([0], dtype=np.intp)).tolist()
        )
        # the root's incident edges are exactly its child edges
        expected = sorted(
            e
            for e, p in enumerate(flat.edge_parent.tolist())
            if p == 0
        )
        assert got == expected

    def test_batch_incident_edges_offsets_by_document(self):
        flat = flatten(chain_tree(4))  # n=4, m=3
        n, m = 4, 3
        # node 2 of document 1 -> edges {1, 2} offset by 1 * m
        flat_nodes = np.asarray([1 * n + 2], dtype=np.intp)
        got = sorted(batch_incident_edges(flat, flat_nodes).tolist())
        assert got == [m + 1, m + 2]

    @given(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=0, max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sorted_unique_matches_numpy(self, values):
        arr = np.asarray(values, dtype=np.intp)
        assert sorted_unique(arr.copy()).tolist() == np.unique(arr).tolist()
