"""LP cross-verification of WebFold's optimality (Theorem 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.lp_check import min_max_load, min_max_load_after_removing
from repro.core.tree import chain_tree, star_tree
from repro.core.webfold import webfold

from tests.helpers import trees_with_rates


class TestKnownCases:
    def test_chain_gle(self):
        assert min_max_load(chain_tree(3), [0, 0, 30]) == pytest.approx(10.0)

    def test_star_partial(self):
        assert min_max_load(star_tree(3), [0, 0, 30]) == pytest.approx(15.0)

    def test_hot_root_forced(self):
        assert min_max_load(chain_tree(3), [30, 0, 0]) == pytest.approx(30.0)

    def test_all_zero(self):
        assert min_max_load(chain_tree(4), [0, 0, 0, 0]) == pytest.approx(0.0)


class TestAgainstWebfold:
    @given(trees_with_rates(max_nodes=15))
    @settings(max_examples=40, deadline=None)
    def test_first_level_matches(self, tree_rates):
        """The LP's optimal max load equals WebFold's max load."""
        tree, rates = tree_rates
        optimum = webfold(tree, rates).assignment
        lp_value = min_max_load(tree, rates)
        assert lp_value == pytest.approx(optimum.max_served, abs=1e-6)

    @given(trees_with_rates(min_nodes=3, max_nodes=12))
    @settings(max_examples=25, deadline=None)
    def test_second_level_matches(self, tree_rates):
        """Definition 1's recursion: remove the max fold, re-solve, and the
        LP optimum matches WebFold's next-highest fold load."""
        tree, rates = tree_rates
        folded = webfold(tree, rates)
        loads = folded.assignment.served
        max_load = max(loads)
        top_fold = max(
            folded.folds.values(), key=lambda f: (f.load, -f.root)
        )
        remaining = [
            folded.assignment.served_of(i)
            for i in tree
            if i not in set(top_fold.members)
        ]
        if not remaining:
            return
        lp_value = min_max_load_after_removing(
            tree, rates, frozenset(top_fold.members)
        )
        assert lp_value == pytest.approx(max(remaining), abs=1e-6)
