"""Tests for the rate-level WebWave protocol (Figure 5)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import is_feasible, satisfies_nss
from repro.core.load import LoadAssignment
from repro.core.tree import chain_tree, kary_tree, star_tree
from repro.core.webfold import webfold
from repro.core.webwave import (
    WebWaveConfig,
    WebWaveResult,
    WebWaveSimulator,
    run_webwave,
)

from tests.helpers import trees_with_rates


class TestConfigValidation:
    def test_defaults_ok(self):
        WebWaveConfig()

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ValueError):
            WebWaveConfig(alpha=alpha)

    def test_bad_delay(self):
        with pytest.raises(ValueError):
            WebWaveConfig(gossip_delay=-1)

    def test_bad_quantum(self):
        with pytest.raises(ValueError):
            WebWaveConfig(quantum=-1.0)

    def test_bad_rounds(self):
        with pytest.raises(ValueError):
            WebWaveConfig(max_rounds=0)


class TestSingleSteps:
    def test_step_conserves_total_load(self):
        tree = kary_tree(2, 2)
        sim = WebWaveSimulator(tree, [float(i) for i in range(tree.n)])
        total = sim.assignment().total_served
        for _ in range(20):
            sim.step()
            assert sim.assignment().total_served == pytest.approx(total)

    def test_step_preserves_nss(self):
        tree = kary_tree(2, 2)
        sim = WebWaveSimulator(tree, [0, 0, 0, 10, 20, 0, 40])
        for _ in range(50):
            sim.step()
            assert satisfies_nss(sim.assignment(), tol=1e-6)

    def test_loads_stay_nonnegative(self):
        tree = star_tree(5)
        sim = WebWaveSimulator(tree, [0, 100, 0, 0, 0])
        for _ in range(50):
            sim.step()
            assert all(l >= -1e-9 for l in sim.assignment().served)

    def test_round_counter(self):
        sim = WebWaveSimulator(chain_tree(2), [1, 1])
        assert sim.round == 0
        sim.step()
        assert sim.round == 1

    def test_no_transfer_when_balanced(self):
        tree = chain_tree(3)
        # already at TLB == GLE
        sim = WebWaveSimulator(tree, [10, 10, 10])
        before = sim.assignment().served
        sim.step()
        assert sim.assignment().served == before


class TestConvergence:
    def test_chain_converges_to_gle(self):
        result = run_webwave(chain_tree(3), [0, 0, 30])
        assert result.converged
        assert result.final.served == pytest.approx((10.0, 10.0, 10.0), abs=1e-4)

    def test_star_converges_to_non_gle_tlb(self):
        result = run_webwave(star_tree(3), [0, 0, 30])
        assert result.converged
        assert result.final.served == pytest.approx((15.0, 0.0, 15.0), abs=1e-4)

    def test_root_hot_stays_put(self):
        result = run_webwave(chain_tree(3), [30, 0, 0])
        assert result.converged
        assert result.rounds == 0  # already TLB: nothing can move
        assert result.final.served == (30.0, 0.0, 0.0)

    def test_distance_non_increasing_exact_gossip(self):
        tree = kary_tree(2, 3)
        rates = [float((i * 7) % 12) for i in range(tree.n)]
        result = run_webwave(tree, rates)
        for earlier, later in zip(result.distances, result.distances[1:]):
            assert later <= earlier + 1e-9

    def test_converges_from_custom_initial_state(self):
        tree = chain_tree(3)
        config = WebWaveConfig(max_rounds=5000)
        result = run_webwave(tree, [0, 0, 30], config, initial_served=[30, 0, 0])
        # initial state violates nothing: the root can hold any load
        assert result.converged

    def test_max_rounds_respected(self):
        config = WebWaveConfig(max_rounds=3, tolerance=0.0)
        result = run_webwave(chain_tree(4), [0, 0, 0, 40], config)
        assert result.rounds == 3
        assert not result.converged

    def test_record_history(self):
        result = run_webwave(chain_tree(3), [0, 0, 30], record_history=True)
        assert result.history is not None
        assert len(result.history) == len(result.distances)
        assert result.history[-1] == result.final.served

    def test_no_history_by_default(self):
        result = run_webwave(chain_tree(3), [0, 0, 30])
        assert result.history is None

    def test_explicit_target(self):
        tree = chain_tree(3)
        rates = [0.0, 0.0, 30.0]
        sim = WebWaveSimulator(tree, rates)
        target = webfold(tree, rates).assignment
        result = sim.run(target=target)
        assert result.converged
        assert result.target is target


class TestGossipDelay:
    def test_stale_gossip_still_converges(self):
        tree = kary_tree(2, 2)
        rates = [0, 5, 10, 0, 40, 0, 15]
        for delay in (1, 2, 4):
            config = WebWaveConfig(gossip_delay=delay, max_rounds=20000)
            result = run_webwave(tree, [float(r) for r in rates], config)
            assert result.converged, f"delay={delay}"

    def test_stale_gossip_slower(self):
        tree = chain_tree(8)
        rates = [0.0] * 7 + [80.0]
        fast = run_webwave(tree, rates, WebWaveConfig(max_rounds=50000))
        slow = run_webwave(
            tree, rates, WebWaveConfig(gossip_delay=4, max_rounds=50000)
        )
        assert slow.rounds >= fast.rounds

    def test_delay_conserves_load(self):
        tree = kary_tree(2, 2)
        sim = WebWaveSimulator(
            tree, [float(i) for i in range(tree.n)], WebWaveConfig(gossip_delay=3)
        )
        total = sim.assignment().total_served
        for _ in range(30):
            sim.step()
        assert sim.assignment().total_served == pytest.approx(total)


class TestQuantum:
    def test_quantized_transfers_are_multiples(self):
        tree = chain_tree(3)
        config = WebWaveConfig(quantum=1.0, max_rounds=200, tolerance=0.0)
        sim = WebWaveSimulator(tree, [0.0, 0.0, 30.0], config)
        for _ in range(5):
            before = sim.assignment().served
            sim.step()
            after = sim.assignment().served
            for b, a in zip(before, after):
                delta = a - b
                assert abs(delta - round(delta)) < 1e-9

    def test_quantum_limits_final_accuracy(self):
        # the paper: the balance "may be off by the load represented by one
        # request".  Transfers stall once alpha * diff < quantum, i.e. when
        # per-edge differences drop below quantum/alpha = 3 here, so the
        # residual distance is bounded by a few quanta (vs ~25 initially).
        tree = chain_tree(3)
        config = WebWaveConfig(quantum=1.0, max_rounds=500, tolerance=0.0)
        result = run_webwave(tree, [0.0, 0.0, 31.0], config)
        assert result.distances[0] > 20.0
        assert result.final_distance <= 6.0


class TestAlphaChoices:
    def test_fixed_alpha_converges(self):
        result = run_webwave(
            chain_tree(4), [0, 0, 0, 40], WebWaveConfig(alpha=0.2, max_rounds=20000)
        )
        assert result.converged

    def test_unsafe_large_alpha_oscillates_on_star(self):
        # alpha=1.0 on a star: the hub overshoots between children
        config = WebWaveConfig(
            alpha=1.0, unsafe_alpha=True, max_rounds=60, tolerance=1e-9
        )
        result = run_webwave(star_tree(4), [0.0, 30.0, 30.0, 30.0], config)
        increased = any(
            later > earlier + 1e-12
            for earlier, later in zip(result.distances, result.distances[1:])
        )
        assert increased or not result.converged

    def test_safe_cap_protects_large_alpha(self):
        config = WebWaveConfig(alpha=1.0, max_rounds=20000)
        result = run_webwave(star_tree(4), [0.0, 30.0, 30.0, 30.0], config)
        assert result.converged


class TestPropertyBased:
    @given(trees_with_rates(min_nodes=2, max_nodes=12))
    @settings(max_examples=30, deadline=None)
    def test_converges_to_webfold_tlb(self, tree_rates):
        tree, rates = tree_rates
        config = WebWaveConfig(max_rounds=30000, tolerance=1e-4)
        result = run_webwave(tree, rates, config)
        assert result.converged
        assert result.final.almost_equal(result.target, tol=0.05)

    @given(trees_with_rates(min_nodes=2, max_nodes=15))
    @settings(max_examples=30, deadline=None)
    def test_every_round_feasible(self, tree_rates):
        tree, rates = tree_rates
        sim = WebWaveSimulator(tree, rates)
        for _ in range(15):
            sim.step()
            assert is_feasible(sim.assignment(), tol=1e-5)
