"""Tests for asynchronous WebWave (repro.core.async_webwave)."""

from __future__ import annotations

import random

import pytest

from repro.core.async_webwave import AsyncWebWave
from repro.core.constraints import is_feasible
from repro.core.tree import chain_tree, kary_tree, star_tree
from repro.core.webfold import webfold


class TestActivation:
    def test_single_activation_conserves(self):
        tree = star_tree(4)
        sim = AsyncWebWave(tree, [0, 30, 0, 6], random.Random(1))
        total = sim.assignment().total_served
        for _ in range(100):
            sim.activate()
            assert sim.assignment().total_served == pytest.approx(total)

    def test_activation_keeps_feasibility(self):
        tree = kary_tree(2, 2)
        sim = AsyncWebWave(
            tree, [0, 4, 0, 0, 25, 3, 9], random.Random(2)
        )
        for _ in range(200):
            sim.activate()
            assert is_feasible(sim.assignment(), tol=1e-6)

    def test_explicit_node_activation(self):
        tree = chain_tree(3)
        sim = AsyncWebWave(tree, [0, 0, 30], random.Random(3))
        before = sim.assignment().served_of(2)
        sim.activate(node=2)  # hot leaf sheds up
        assert sim.assignment().served_of(2) < before

    def test_activation_counter(self):
        sim = AsyncWebWave(chain_tree(2), [1, 1], random.Random(0))
        sim.activate()
        sim.activate()
        assert sim.activations == 2


class TestConvergence:
    @pytest.mark.parametrize("staleness", [0, 3, 10])
    def test_converges_with_bounded_staleness(self, staleness):
        tree = kary_tree(2, 2)
        rng = random.Random(42)
        rates = [rng.uniform(0, 40) for _ in range(tree.n)]
        sim = AsyncWebWave(
            tree, rates, random.Random(staleness), max_staleness=staleness
        )
        result = sim.run(max_activations=400_000, tolerance=1e-4)
        assert result.converged, f"staleness={staleness}"
        assert result.final.almost_equal(result.target, tol=0.01)

    def test_matches_webfold_target(self):
        tree = star_tree(3)
        sim = AsyncWebWave(tree, [0.0, 0.0, 30.0], random.Random(5))
        result = sim.run(tolerance=1e-5)
        assert result.converged
        expected = webfold(tree, [0.0, 0.0, 30.0]).assignment
        assert result.final.almost_equal(expected, tol=1e-3)

    def test_activation_budget_respected(self):
        tree = chain_tree(10)
        rates = [0.0] * 9 + [90.0]
        sim = AsyncWebWave(tree, rates, random.Random(1))
        result = sim.run(max_activations=50, tolerance=0.0)
        assert result.activations == 50
        assert not result.converged

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            AsyncWebWave(chain_tree(2), [1, 1], random.Random(0), max_staleness=-1)
