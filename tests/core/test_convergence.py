"""Tests for the gamma regression and convergence measurement."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import empirical_rate, fit_gamma, halving_time


class TestFitGamma:
    def test_recovers_exact_exponential(self):
        gamma, a = 0.85, 40.0
        series = [a * gamma**t for t in range(60)]
        fit = fit_gamma(series)
        assert fit.gamma == pytest.approx(gamma, abs=1e-6)
        assert fit.a == pytest.approx(a, rel=1e-6)
        assert fit.r_squared > 0.999999

    def test_stderr_small_for_exact_data(self):
        series = [10.0 * 0.9**t for t in range(50)]
        fit = fit_gamma(series)
        assert fit.gamma_stderr < 1e-6

    def test_noisy_data_still_close(self):
        import random

        rng = random.Random(3)
        series = [
            25.0 * 0.9**t * (1 + rng.uniform(-0.05, 0.05)) for t in range(80)
        ]
        fit = fit_gamma(series)
        assert fit.gamma == pytest.approx(0.9, abs=0.02)

    def test_trailing_zeros_dropped(self):
        series = [8.0 * 0.8**t for t in range(30)] + [0.0] * 10
        fit = fit_gamma(series)
        assert fit.iterations == 30
        assert fit.gamma == pytest.approx(0.8, abs=1e-5)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least 3"):
            fit_gamma([1.0, 0.5])

    def test_all_zero(self):
        with pytest.raises(ValueError):
            fit_gamma([0.0, 0.0, 0.0])

    def test_bound_evaluation(self):
        fit = fit_gamma([16.0 * 0.5**t for t in range(20)])
        assert fit.bound(0) == pytest.approx(16.0, rel=1e-4)
        assert fit.bound(4) == pytest.approx(1.0, rel=1e-3)

    def test_describe(self):
        fit = fit_gamma([4.0 * 0.7**t for t in range(20)])
        text = fit.describe()
        assert "gamma" in text and "R^2" in text

    @given(
        st.floats(min_value=0.3, max_value=0.98),
        st.floats(min_value=1.0, max_value=1000.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, gamma, a):
        series = [a * gamma**t for t in range(50)]
        fit = fit_gamma(series)
        assert fit.gamma == pytest.approx(gamma, abs=1e-4)


class TestEmpiricalRate:
    def test_exact_geometric(self):
        series = [100.0 * 0.9**t for t in range(11)]
        assert empirical_rate(series) == pytest.approx(0.9)

    def test_stops_at_first_zero(self):
        series = [8.0, 4.0, 2.0, 0.0, 5.0]
        assert empirical_rate(series) == pytest.approx(0.5)

    def test_too_short(self):
        with pytest.raises(ValueError):
            empirical_rate([1.0])

    def test_zero_first(self):
        with pytest.raises(ValueError):
            empirical_rate([0.0, 1.0])


class TestHalvingTime:
    def test_half_per_step(self):
        assert halving_time(0.5) == pytest.approx(1.0)

    def test_slower_rate(self):
        assert halving_time(0.9) == pytest.approx(math.log(0.5) / math.log(0.9))

    @pytest.mark.parametrize("gamma", [0.0, 1.0, -0.5, 2.0])
    def test_invalid(self, gamma):
        with pytest.raises(ValueError):
            halving_time(gamma)
