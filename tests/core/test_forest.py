"""Tests for WebWave over overlapping routing trees (repro.core.forest)."""

from __future__ import annotations

import random

import pytest

from repro.core.constraints import satisfies_nss
from repro.core.forest import ForestWebWave
from repro.core.tree import RoutingTree, chain_tree
from repro.net.generators import grid_topology, waxman_topology
from repro.net.routing import extract_forest


def two_chain_forest():
    """Two opposite chains over 4 nodes: homes at 0 and 3."""
    down = chain_tree(4)  # rooted at 0
    up = RoutingTree([1, 2, 3, 3])  # rooted at 3
    return {0: down, 3: up}


class TestConstruction:
    def test_valid(self):
        trees = two_chain_forest()
        demands = {0: [0, 0, 0, 20.0], 3: [20.0, 0, 0, 0]}
        forest = ForestWebWave(trees, demands)
        assert forest.n == 4
        assert forest.homes == (0, 3)

    def test_mismatched_homes(self):
        trees = two_chain_forest()
        with pytest.raises(ValueError, match="same homes"):
            ForestWebWave(trees, {0: [0, 0, 0, 1.0]})

    def test_wrong_root(self):
        trees = {5: chain_tree(4)}  # rooted at 0, keyed as 5
        with pytest.raises(ValueError, match="rooted"):
            ForestWebWave(trees, {5: [1.0] * 4})

    def test_different_sizes(self):
        with pytest.raises(ValueError, match="same node set"):
            ForestWebWave(
                {0: chain_tree(3), 1: RoutingTree([1, 1])},
                {0: [1.0] * 3, 1: [1.0] * 2},
            )

    def test_empty(self):
        with pytest.raises(ValueError):
            ForestWebWave({}, {})


class TestDynamics:
    def test_per_tree_conservation(self):
        trees = two_chain_forest()
        demands = {0: [0.0, 0.0, 0.0, 24.0], 3: [24.0, 0.0, 0.0, 0.0]}
        forest = ForestWebWave(trees, demands)
        for _ in range(60):
            forest.step()
            for home in forest.homes:
                assignment = forest.tree_assignment(home)
                assert assignment.total_served == pytest.approx(24.0)
                assert satisfies_nss(assignment, tol=1e-6)

    def test_opposing_chains_balance_totals(self):
        # demand flows in opposite directions; coupling spreads the total
        trees = two_chain_forest()
        demands = {0: [0.0, 0.0, 0.0, 40.0], 3: [40.0, 0.0, 0.0, 0.0]}
        forest = ForestWebWave(trees, demands)
        result = forest.run(max_rounds=4000)
        assert result.final_max_total <= result.initial_max_total + 1e-9
        # total demand 80 over 4 nodes: coupled balance approaches 20/node
        assert result.final_max_total == pytest.approx(20.0, abs=1.0)

    def test_improvement_on_skewed_demand(self):
        topo = grid_topology(3, 3)
        trees = extract_forest(topo, [0, 8])
        demands = {
            0: [0.0] * 8 + [60.0],  # hot corner for home 0's documents
            8: [60.0] + [0.0] * 8,  # opposite hot corner for home 8's
        }
        forest = ForestWebWave(trees, demands)
        result = forest.run(max_rounds=4000)
        assert result.improvement > 0.3

    def test_total_is_sum_of_trees(self):
        trees = two_chain_forest()
        demands = {0: [0.0, 2.0, 0.0, 8.0], 3: [4.0, 0.0, 6.0, 0.0]}
        forest = ForestWebWave(trees, demands)
        forest.step()
        totals = forest.total_loads()
        for i in range(4):
            expected = sum(
                forest.tree_assignment(h).served_of(i) for h in forest.homes
            )
            assert totals[i] == pytest.approx(expected)

    def test_history_recorded(self):
        trees = two_chain_forest()
        demands = {0: [0.0, 0.0, 0.0, 12.0], 3: [12.0, 0.0, 0.0, 0.0]}
        result = ForestWebWave(trees, demands).run(max_rounds=200)
        assert len(result.max_total_history) == result.rounds + 1

    def test_waxman_forest_runs(self):
        topo = waxman_topology(16, random.Random(2))
        trees = extract_forest(topo, [0, 7, 13])
        rng = random.Random(3)
        demands = {
            h: [rng.uniform(0, 10) for _ in range(16)] for h in trees
        }
        result = ForestWebWave(trees, demands).run(max_rounds=2000)
        assert result.final_max_total <= result.initial_max_total + 1e-6
