"""Unit tests for repro.core.tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tree import (
    RoutingTree,
    TreeError,
    chain_tree,
    kary_tree,
    random_tree,
    random_tree_with_depth,
    star_tree,
    tree_from_edges,
    tree_from_parent_map,
)

from tests.helpers import routing_trees


class TestConstruction:
    def test_single_node(self):
        tree = RoutingTree([0])
        assert tree.n == 1
        assert tree.root == 0
        assert tree.is_leaf(0)
        assert tree.parent(0) is None

    def test_simple_chain(self):
        tree = RoutingTree([0, 0, 1])
        assert tree.root == 0
        assert tree.parent(2) == 1
        assert tree.children(0) == (1,)
        assert tree.children(1) == (2,)

    def test_root_can_be_any_node(self):
        tree = RoutingTree([1, 1, 1])
        assert tree.root == 1
        assert set(tree.children(1)) == {0, 2}

    def test_empty_rejected(self):
        with pytest.raises(TreeError):
            RoutingTree([])

    def test_no_root_rejected(self):
        with pytest.raises(TreeError, match="exactly one root"):
            RoutingTree([1, 0])  # 2-cycle, no self-loop

    def test_two_roots_rejected(self):
        with pytest.raises(TreeError, match="exactly one root"):
            RoutingTree([0, 1, 0])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeError, match="not a node id"):
            RoutingTree([0, 5])

    def test_disconnected_cycle_rejected(self):
        # 0 is root; 1 and 2 form a 2-cycle unreachable from the root
        with pytest.raises(TreeError, match="not connected"):
            RoutingTree([0, 2, 1])

    def test_from_parent_dict(self):
        tree = tree_from_parent_map({0: 0, 1: 0, 2: 1})
        assert tree.parent_map == (0, 0, 1)

    def test_from_parent_dict_bad_keys(self):
        with pytest.raises(TreeError, match="keys"):
            tree_from_parent_map({0: 0, 2: 0})

    def test_from_edges(self):
        tree = tree_from_edges(4, [(0, 1), (1, 2), (1, 3)], root=0)
        assert tree.parent(2) == 1
        assert tree.parent(1) == 0

    def test_from_edges_rerooted(self):
        tree = tree_from_edges(3, [(0, 1), (1, 2)], root=2)
        assert tree.root == 2
        assert tree.parent(0) == 1

    def test_from_edges_wrong_count(self):
        with pytest.raises(TreeError, match="needs"):
            tree_from_edges(3, [(0, 1)])

    def test_from_edges_disconnected(self):
        with pytest.raises(TreeError, match="not connected"):
            tree_from_edges(4, [(0, 1), (2, 3), (2, 3)])


class TestAccessors:
    def test_neighbors_root(self, small_tree):
        assert small_tree.neighbors(0) == (1, 2)

    def test_neighbors_internal(self, small_tree):
        assert small_tree.neighbors(1) == (0, 3, 4)

    def test_neighbors_leaf(self, small_tree):
        assert small_tree.neighbors(3) == (1,)

    def test_degree(self, small_tree):
        assert small_tree.degree(0) == 2
        assert small_tree.degree(1) == 3
        assert small_tree.degree(4) == 1

    def test_depth_and_height(self, small_tree):
        assert small_tree.depth(0) == 0
        assert small_tree.depth(2) == 1
        assert small_tree.depth(4) == 2
        assert small_tree.height == 2

    def test_leaves(self, small_tree):
        assert small_tree.leaves() == (2, 3, 4)

    def test_len_and_iter(self, small_tree):
        assert len(small_tree) == 5
        assert list(small_tree) == [0, 1, 2, 3, 4]

    def test_equality_and_hash(self):
        a = RoutingTree([0, 0, 1])
        b = RoutingTree([0, 0, 1])
        c = RoutingTree([0, 0, 0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a tree"

    def test_repr(self, small_tree):
        assert "n=5" in repr(small_tree)


class TestTraversals:
    def test_bfs_order_parents_first(self, small_tree):
        order = small_tree.bfs_order()
        position = {node: i for i, node in enumerate(order)}
        for node in small_tree:
            parent = small_tree.parent(node)
            if parent is not None:
                assert position[parent] < position[node]

    def test_bottomup_children_first(self, small_tree):
        seen = set()
        for node in small_tree.bottomup():
            for child in small_tree.children(node):
                assert child in seen
            seen.add(node)

    def test_subtree_members(self, small_tree):
        assert set(small_tree.subtree(1)) == {1, 3, 4}
        assert set(small_tree.subtree(0)) == {0, 1, 2, 3, 4}
        assert list(small_tree.subtree(3)) == [3]

    def test_subtree_size(self, small_tree):
        assert small_tree.subtree_size(1) == 3
        assert small_tree.subtree_size(0) == 5

    def test_path_to_root(self, small_tree):
        assert small_tree.path_to_root(4) == (4, 1, 0)
        assert small_tree.path_to_root(0) == (0,)

    def test_is_ancestor(self, small_tree):
        assert small_tree.is_ancestor(0, 4)
        assert small_tree.is_ancestor(1, 4)
        assert small_tree.is_ancestor(4, 4)
        assert not small_tree.is_ancestor(2, 4)
        assert not small_tree.is_ancestor(4, 1)


class TestSubtreeSums:
    def test_simple(self, small_tree):
        sums = small_tree.subtree_sums([1.0, 2.0, 3.0, 4.0, 5.0])
        assert sums == [15.0, 11.0, 3.0, 4.0, 5.0]

    def test_wrong_length(self, small_tree):
        with pytest.raises(ValueError, match="expected 5"):
            small_tree.subtree_sums([1.0])

    @given(routing_trees(max_nodes=20))
    def test_root_sum_is_total(self, tree):
        values = [float(i + 1) for i in range(tree.n)]
        sums = tree.subtree_sums(values)
        assert sums[tree.root] == pytest.approx(sum(values))


class TestRender:
    def test_contains_all_nodes(self, small_tree):
        text = small_tree.render()
        for node in small_tree:
            assert str(node) in text

    def test_labels(self, small_tree):
        text = small_tree.render(lambda i: f"L{i * 10}")
        assert "L30" in text


class TestBuilders:
    def test_chain(self):
        tree = chain_tree(4)
        assert tree.parent_map == (0, 0, 1, 2)
        assert tree.height == 3

    def test_chain_single(self):
        assert chain_tree(1).n == 1

    def test_chain_invalid(self):
        with pytest.raises(TreeError):
            chain_tree(0)

    def test_star(self):
        tree = star_tree(5)
        assert tree.children(0) == (1, 2, 3, 4)
        assert tree.height == 1

    def test_kary_counts(self):
        tree = kary_tree(2, 3)
        assert tree.n == 15
        assert tree.height == 3
        assert len(tree.leaves()) == 8

    def test_kary_unary_is_chain(self):
        assert kary_tree(1, 4) == chain_tree(5)

    def test_kary_invalid(self):
        with pytest.raises(TreeError):
            kary_tree(0, 2)
        with pytest.raises(TreeError):
            kary_tree(2, -1)

    def test_random_tree_valid(self, rng):
        for n in (1, 2, 7, 40):
            tree = random_tree(n, rng)
            assert tree.n == n
            assert tree.root == 0

    def test_random_tree_max_children(self, rng):
        tree = random_tree(50, rng, max_children=2)
        assert all(len(tree.children(i)) <= 2 for i in tree)

    def test_random_tree_deterministic(self):
        a = random_tree(20, random.Random(7))
        b = random_tree(20, random.Random(7))
        assert a == b

    @pytest.mark.parametrize("depth", [0, 1, 3, 9])
    def test_random_tree_with_depth_exact_height(self, depth, rng):
        tree = random_tree_with_depth(depth, rng)
        assert tree.height == depth

    def test_random_tree_with_depth_invalid(self, rng):
        with pytest.raises(TreeError):
            random_tree_with_depth(-1, rng)
