"""Tests for the per-document protocol, barriers and tunneling (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core.barriers import (
    DocumentDemand,
    DocumentWebWave,
    DocumentWebWaveConfig,
    find_potential_barriers,
)
from repro.core.tree import chain_tree, tree_from_parent_map
from repro.core.webfold import webfold
from repro.experiments.paper_trees import (
    fig7_demand,
    fig7_initial_cache,
    fig7_initial_served,
)


def fig7_tree():
    return tree_from_parent_map([0, 0, 1, 1])


class TestDocumentDemand:
    def test_rates(self):
        demand = fig7_demand()
        assert demand.rate(3, "d1") == 120.0
        assert demand.rate(2, "d3") == 120.0
        assert demand.rate(0, "d1") == 0.0

    def test_node_totals(self):
        assert fig7_demand().node_totals() == [0.0, 0.0, 120.0, 240.0]

    def test_total(self):
        assert fig7_demand().total == 360.0

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            DocumentDemand(chain_tree(2), ("d",), {7: {"d": 1.0}})

    def test_unknown_document_rejected(self):
        with pytest.raises(ValueError, match="unknown document"):
            DocumentDemand(chain_tree(2), ("d",), {0: {"x": 1.0}})

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            DocumentDemand(chain_tree(2), ("d",), {0: {"d": -1.0}})

    def test_duplicate_documents_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DocumentDemand(chain_tree(2), ("d", "d"), {})


class TestSettlement:
    def test_home_serves_everything_initially(self):
        model = DocumentWebWave(fig7_demand())
        # no caches, no chosen rates: everything reaches the home
        assert model.served_rate(0) == pytest.approx(360.0)
        assert model.served_rate(2) == 0.0

    def test_per_document_flows(self):
        model = DocumentWebWave(fig7_demand())
        assert model.forwarded_rate(3, "d1") == pytest.approx(120.0)
        assert model.forwarded_rate(2, "d3") == pytest.approx(120.0)
        assert model.forwarded_rate(1) == pytest.approx(360.0)

    def test_chosen_rates_clamped_to_flow(self):
        # node 1 wants to serve 500 of d1 but only 120 flows through
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache={1: ["d1"]},
            initial_served={1: {"d1": 500.0}},
        )
        assert model.served_rate(1, "d1") == pytest.approx(120.0)

    def test_serving_requires_copy(self):
        with pytest.raises(ValueError, match="no cache copy"):
            DocumentWebWave(fig7_demand(), initial_served={2: {"d3": 10.0}})

    def test_home_caches_catalog(self):
        model = DocumentWebWave(fig7_demand())
        assert model.cached_documents(0) == {"d1", "d2", "d3"}


class TestBarrierDetection:
    def test_fig7_initial_barrier(self):
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache=fig7_initial_cache(),
            initial_served=fig7_initial_served(),
        )
        assert find_potential_barriers(model) == [1]

    def test_no_barrier_with_copy(self):
        # give the barrier node a d3 copy: condition no longer met
        cache = fig7_initial_cache()
        cache[1] = cache[1] + ["d3"]
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache=cache,
            initial_served=fig7_initial_served(),
        )
        assert find_potential_barriers(model) == []

    def test_no_barrier_when_child_loaded(self):
        model = DocumentWebWave(fig7_demand())
        assert find_potential_barriers(model) == []


class TestFig7Dynamics:
    def test_wedged_without_tunneling(self):
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache=fig7_initial_cache(),
            initial_served=fig7_initial_served(),
            config=DocumentWebWaveConfig(
                tunneling=False, max_rounds=300, tolerance=0.5
            ),
        )
        result = model.run()
        assert not result.converged
        assert model.served_rate(2) == 0.0
        assert result.distances[-1] == pytest.approx(result.distances[0])

    def test_recovers_with_tunneling(self):
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache=fig7_initial_cache(),
            initial_served=fig7_initial_served(),
            config=DocumentWebWaveConfig(max_rounds=300, tolerance=0.5),
        )
        result = model.run()
        assert result.converged
        assert len(result.tunnel_events) == 1
        event = result.tunnel_events[0]
        assert event.node == 2
        assert event.document == "d3"
        assert event.barrier == 1
        assert event.source == 0
        for load in model.loads():
            assert load == pytest.approx(90.0, abs=1.0)

    def test_tunnel_waits_for_patience(self):
        model = DocumentWebWave(
            fig7_demand(),
            initial_cache=fig7_initial_cache(),
            initial_served=fig7_initial_served(),
            config=DocumentWebWaveConfig(patience=5, max_rounds=300, tolerance=0.5),
        )
        result = model.run()
        assert result.converged
        assert result.tunnel_events[0].round >= 5

    def test_target_is_gle_here(self):
        model = DocumentWebWave(fig7_demand())
        assert model.tlb_target().served == pytest.approx((90.0,) * 4)


class TestProtocolMechanics:
    def test_cold_start_converges(self):
        # from empty caches the home delegates down the chain
        tree = chain_tree(3)
        demand = DocumentDemand(tree, ("a", "b"), {2: {"a": 60.0, "b": 30.0}})
        model = DocumentWebWave(
            demand, config=DocumentWebWaveConfig(max_rounds=500, tolerance=0.5)
        )
        result = model.run()
        assert result.converged
        for load in model.loads():
            assert load == pytest.approx(30.0, abs=1.0)

    def test_copies_propagate_down(self):
        tree = chain_tree(3)
        demand = DocumentDemand(tree, ("a",), {2: {"a": 90.0}})
        model = DocumentWebWave(
            demand, config=DocumentWebWaveConfig(max_rounds=400, tolerance=0.5)
        )
        model.run()
        assert "a" in model.cached_documents(1)
        assert "a" in model.cached_documents(2)

    def test_shedding_deletes_zero_copies(self):
        tree = chain_tree(2)
        demand = DocumentDemand(tree, ("a",), {1: {"a": 10.0}})
        # child starts serving everything; TLB is 5/5, so it sheds
        model = DocumentWebWave(
            demand,
            initial_cache={1: ["a"]},
            initial_served={1: {"a": 10.0}},
            config=DocumentWebWaveConfig(max_rounds=400, tolerance=0.2),
        )
        result = model.run()
        assert result.converged
        assert model.served_rate(0) == pytest.approx(5.0, abs=0.3)

    def test_no_evict_keeps_copy(self):
        tree = chain_tree(2)
        demand = DocumentDemand(tree, ("a",), {1: {"a": 10.0}})
        model = DocumentWebWave(
            demand,
            initial_cache={1: ["a"]},
            initial_served={1: {"a": 10.0}},
            config=DocumentWebWaveConfig(
                evict_on_zero=False, max_rounds=100, tolerance=0.2
            ),
        )
        model.run()
        assert "a" in model.cached_documents(1)

    def test_total_flow_conserved_every_round(self):
        demand = fig7_demand()
        model = DocumentWebWave(
            demand,
            initial_cache=fig7_initial_cache(),
            initial_served=fig7_initial_served(),
        )
        for _ in range(30):
            model.step()
            assert sum(model.loads()) == pytest.approx(demand.total)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DocumentWebWaveConfig(patience=-1)
        with pytest.raises(ValueError):
            DocumentWebWaveConfig(max_tunnel_docs=0)

    def test_assignment_consistency(self):
        model = DocumentWebWave(fig7_demand())
        assignment = model.assignment()
        assert assignment.total_served == pytest.approx(360.0)
        assert assignment.spontaneous == (0.0, 0.0, 120.0, 240.0)
