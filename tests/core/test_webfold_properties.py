"""Property-based verification of WebFold (Lemmas 1-3, Theorem 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import (
    gle_feasible,
    is_feasible,
    is_gle,
    lex_less,
)
from repro.core.load import LoadAssignment
from repro.core.pava import tree_waterfill
from repro.core.webfold import webfold

from tests.helpers import trees_with_rates, assert_feasible


@given(trees_with_rates())
def test_conservation(tree_rates):
    """Total served equals total generated (Constraint 1 aggregate form)."""
    tree, rates = tree_rates
    assignment = webfold(tree, rates).assignment
    assert assignment.total_served == pytest.approx(sum(rates), abs=1e-6)


@given(trees_with_rates())
def test_feasibility(tree_rates):
    """Constraints 1 and 2: A_root == 0 and every A_i >= 0 (Lemma 3)."""
    tree, rates = tree_rates
    assert_feasible(webfold(tree, rates).assignment)


@given(trees_with_rates())
def test_lemma1_monotone_root_to_leaf(tree_rates):
    """Loads are monotonically non-increasing from root toward leaves."""
    tree, rates = tree_rates
    loads = webfold(tree, rates).assignment.served
    for i in tree:
        parent = tree.parent(i)
        if parent is not None:
            assert loads[parent] >= loads[i] - 1e-9


@given(trees_with_rates())
def test_lemma2_no_interfold_flow(tree_rates):
    """Within every fold, served load equals spontaneous load (A=0 at fold
    boundaries): each fold's members sum to the fold's spontaneous total."""
    tree, rates = tree_rates
    result = webfold(tree, rates)
    for fold in result.folds.values():
        total_e = sum(rates[m] for m in fold.members)
        total_l = sum(result.assignment.served_of(m) for m in fold.members)
        assert total_l == pytest.approx(total_e, abs=1e-6)
        assert total_e == pytest.approx(fold.spontaneous, abs=1e-6)


@given(trees_with_rates())
def test_equal_load_within_fold(tree_rates):
    """Every node of a fold carries the same load."""
    tree, rates = tree_rates
    result = webfold(tree, rates)
    for fold in result.folds.values():
        for m in fold.members:
            assert result.assignment.served_of(m) == pytest.approx(fold.load)


@given(trees_with_rates())
def test_max_load_at_least_mean(tree_rates):
    """TLB can never beat GLE: L_max >= mean(E), equality iff GLE feasible."""
    tree, rates = tree_rates
    assignment = webfold(tree, rates).assignment
    mean = assignment.mean_spontaneous
    assert assignment.max_served >= mean - 1e-9
    if gle_feasible(tree, rates):
        assert is_gle(assignment, tol=1e-6)
    elif sum(rates) > 1e-6:
        assert assignment.max_served > mean + 1e-12 or is_gle(assignment, 1e-9)


@given(trees_with_rates(max_nodes=15, integral=True), st.integers(0, 2**31))
@settings(max_examples=60)
def test_no_feasible_competitor_beats_webfold(tree_rates, seed):
    """Theorem 1 via adversarial sampling.

    Generate feasible competitor assignments by random upward load shifts
    from the identity assignment (every feasible assignment is reachable
    that way) and check none is lexicographically better than WebFold's.
    """
    tree, rates = tree_rates
    optimum = webfold(tree, rates).assignment
    rng = random.Random(seed)
    for _ in range(10):
        loads = list(rates)
        for _ in range(3 * tree.n):
            i = rng.randrange(tree.n)
            if i == tree.root or loads[i] <= 0:
                continue
            # move a random slice of i's load to a random ancestor
            path = tree.path_to_root(i)
            target = path[rng.randrange(1, len(path))]
            x = rng.uniform(0, loads[i])
            loads[i] -= x
            loads[target] += x
        competitor = LoadAssignment(tree, rates, loads)
        assert is_feasible(competitor, tol=1e-6)
        assert not lex_less(competitor.served, optimum.served, tol=1e-6)


@given(trees_with_rates())
def test_fold_boundary_loads_strictly_ordered(tree_rates):
    """A fold's load never exceeds its parent fold's load (else foldable)."""
    tree, rates = tree_rates
    result = webfold(tree, rates)
    for root, fold in result.folds.items():
        if root == tree.root:
            continue
        parent_fold = result.fold_of(tree.parent_map[root])
        assert fold.load <= parent_fold.load + 1e-9


@given(trees_with_rates(max_nodes=40))
@settings(max_examples=50)
def test_cross_check_against_waterfill(tree_rates):
    """WebFold (global max-first) == PAVA water-filling (local bottom-up)."""
    tree, rates = tree_rates
    a = webfold(tree, rates)
    b = tree_waterfill(tree, rates)
    assert a.assignment.almost_equal(b.assignment, tol=1e-6)
    assert set(a.folds) == set(b.fold_members)
    for root, fold in a.folds.items():
        assert fold.members == b.fold_members[root]


@given(trees_with_rates(max_nodes=25))
@settings(max_examples=40)
def test_scaling_invariance(tree_rates):
    """Scaling all rates by c scales all TLB loads by c (fold structure
    unchanged)."""
    tree, rates = tree_rates
    c = 3.5
    base = webfold(tree, rates)
    scaled = webfold(tree, [r * c for r in rates])
    for i in tree:
        assert scaled.assignment.served_of(i) == pytest.approx(
            c * base.assignment.served_of(i), abs=1e-6
        )
    assert set(scaled.folds) == set(base.folds)
