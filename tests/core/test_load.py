"""Unit tests for repro.core.load."""

from __future__ import annotations

import math

import pytest
from hypothesis import given

from repro.core.load import LoadAssignment, proportional_assignment, uniform_assignment
from repro.core.tree import RoutingTree, chain_tree, star_tree

from tests.helpers import trees_with_rates


class TestConstruction:
    def test_default_served_equals_spontaneous(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5])
        assert a.served == a.spontaneous == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_explicit_served(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5], [5, 4, 3, 2, 1])
        assert a.served == (5.0, 4.0, 3.0, 2.0, 1.0)

    def test_wrong_length_spontaneous(self, small_tree):
        with pytest.raises(ValueError, match="expected 5"):
            LoadAssignment(small_tree, [1.0])

    def test_wrong_length_served(self, small_tree):
        with pytest.raises(ValueError, match="expected 5"):
            LoadAssignment(small_tree, [1] * 5, [1.0])

    def test_negative_spontaneous_rejected(self, small_tree):
        with pytest.raises(ValueError, match="must be finite"):
            LoadAssignment(small_tree, [1, 2, -3, 4, 5])

    def test_nan_rejected(self, small_tree):
        with pytest.raises(ValueError):
            LoadAssignment(small_tree, [1, 2, math.nan, 4, 5])

    def test_infinite_rejected(self, small_tree):
        with pytest.raises(ValueError):
            LoadAssignment(small_tree, [1, 2, math.inf, 4, 5])

    def test_negative_served_rejected(self, small_tree):
        with pytest.raises(ValueError, match="must be finite"):
            LoadAssignment(small_tree, [1] * 5, [0, 0, -1, 0, 0])

    def test_tiny_negative_served_clamped(self, small_tree):
        a = LoadAssignment(small_tree, [1] * 5, [0, 0, -1e-12, 0, 0])
        assert a.served[2] == 0.0


class TestForwarded:
    def test_chain_forwarding(self):
        tree = chain_tree(3)
        # leaf generates 30, serves nothing; middle serves 10; root the rest
        a = LoadAssignment(tree, [0, 0, 30], [20, 10, 0])
        assert a.forwarded == (0.0, 20.0, 30.0)

    def test_forwarded_of_and_arrival(self):
        tree = chain_tree(3)
        a = LoadAssignment(tree, [0, 0, 30], [20, 10, 0])
        assert a.forwarded_of(2) == 30.0
        assert a.arrival_of(1) == 30.0
        assert a.arrival_of(0) == 20.0

    def test_negative_forwarded_signals_infeasible(self):
        tree = chain_tree(2)
        # child serves more than its subtree generates: A < 0
        a = LoadAssignment(tree, [10, 0], [0, 10])
        assert a.forwarded_of(1) == -10.0

    def test_l_equals_e_gives_zero_forwarding(self, small_tree):
        a = LoadAssignment(small_tree, [3, 1, 4, 1, 5])
        assert all(x == 0.0 for x in a.forwarded)

    @given(trees_with_rates(max_nodes=20))
    def test_flow_conservation_identity(self, tree_rates):
        tree, rates = tree_rates
        a = LoadAssignment(tree, rates)
        for i in tree:
            inflow = a.spontaneous_of(i) + sum(
                a.forwarded_of(c) for c in tree.children(i)
            )
            assert inflow == pytest.approx(a.served_of(i) + a.forwarded_of(i))


class TestAggregates:
    def test_totals(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5], [2, 2, 2, 2, 2])
        assert a.total_spontaneous == 15.0
        assert a.total_served == 10.0
        assert a.mean_spontaneous == 3.0
        assert a.max_served == 2.0

    def test_sorted_descending(self, small_tree):
        a = LoadAssignment(small_tree, [0] * 5, [3, 1, 4, 1, 5])
        assert a.sorted_descending() == (5.0, 4.0, 3.0, 1.0, 1.0)

    def test_subtree_aggregates(self, small_tree):
        a = LoadAssignment(small_tree, [1, 1, 1, 1, 1])
        assert a.subtree_spontaneous()[1] == 3.0
        assert a.subtree_served()[0] == 5.0


class TestDistanceAndEquality:
    def test_distance_zero_to_self(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5])
        assert a.distance_to(a) == 0.0

    def test_distance_euclidean(self):
        tree = chain_tree(2)
        a = LoadAssignment(tree, [0, 0], [0, 0])
        b = LoadAssignment(tree, [0, 0], [3, 4])
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_size_mismatch(self):
        a = LoadAssignment(chain_tree(2), [0, 0])
        b = LoadAssignment(chain_tree(3), [0, 0, 0])
        with pytest.raises(ValueError):
            a.distance_to(b)

    def test_equality(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5])
        b = LoadAssignment(small_tree, [1, 2, 3, 4, 5])
        assert a == b
        assert hash(a) == hash(b)
        assert a != LoadAssignment(small_tree, [1, 2, 3, 4, 6])
        assert a != 42

    def test_almost_equal(self, small_tree):
        a = LoadAssignment(small_tree, [1] * 5, [1, 1, 1, 1, 1])
        b = a.with_served([1 + 1e-9, 1, 1, 1, 1])
        assert a.almost_equal(b)
        assert not a.almost_equal(a.with_served([2, 1, 1, 1, 1]))

    def test_with_served_keeps_tree_and_e(self, small_tree):
        a = LoadAssignment(small_tree, [1, 2, 3, 4, 5])
        b = a.with_served([0, 0, 0, 0, 15])
        assert b.tree is small_tree
        assert b.spontaneous == a.spontaneous
        assert b.served == (0.0, 0.0, 0.0, 0.0, 15.0)


class TestConvenience:
    def test_as_dict(self, small_tree):
        d = LoadAssignment(small_tree, [1] * 5).as_dict()
        assert set(d) == {"spontaneous", "served", "forwarded"}

    def test_repr(self, small_tree):
        text = repr(LoadAssignment(small_tree, [1] * 5))
        assert "n=5" in text

    def test_render_mentions_rates(self, small_tree):
        text = LoadAssignment(small_tree, [7] * 5).render()
        assert "E=7" in text

    def test_uniform_assignment(self, small_tree):
        a = uniform_assignment(small_tree, 4.0)
        assert a.spontaneous == (4.0,) * 5

    def test_proportional_assignment(self, small_tree):
        a = proportional_assignment(small_tree, [1, 1, 2, 0, 0], 40.0)
        assert a.spontaneous == (10.0, 10.0, 20.0, 0.0, 0.0)

    def test_proportional_zero_weights_rejected(self, small_tree):
        with pytest.raises(ValueError, match="positive sum"):
            proportional_assignment(small_tree, [0] * 5, 10.0)
