"""Property tests for the vectorized diffusion kernel (repro.core.kernel).

Invariants checked across randomized trees and rate patterns:

* one synchronous round of :class:`SyncEngine` equals the pure-Python
  :func:`reference_round` oracle (the seed loop, kept as specification);
* per-round mass conservation: total served load never changes;
* served loads stay non-negative;
* the NSS cap: a parent never relegates more than the child's subtree
  forwards, i.e. every forwarded rate ``A_i`` stays non-negative;
* the flattening helpers agree with the RoutingTree reference
  implementations (subtree sums, forwarded rates, resettle).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamics import resettle
from repro.core.kernel import (
    AsyncEngine,
    FlatTree,
    SyncEngine,
    degree_edge_alphas,
    edge_alpha_map,
    fixed_edge_alphas,
    flatten,
    forwarded_rates,
    reference_round,
    resettle_served,
    subtree_accumulate,
)
from repro.core.load import LoadAssignment
from repro.core.tree import RoutingTree, chain_tree, kary_tree, random_tree

from tests.helpers import trees_with_rates


class TestFlatTree:
    def test_edges_cover_non_root_nodes(self):
        tree = random_tree(30, random.Random(3))
        flat = flatten(tree)
        assert sorted(flat.edge_child.tolist()) == [
            i for i in range(tree.n) if i != tree.root
        ]
        for p, c in zip(flat.edge_parent, flat.edge_child):
            assert tree.parent(int(c)) == int(p)

    def test_children_index_matches_tree(self):
        tree = random_tree(25, random.Random(9))
        flat = flatten(tree)
        for i in range(tree.n):
            assert tuple(flat.children_of(i).tolist()) == tree.children(i)

    def test_degree_matches_tree(self):
        tree = random_tree(20, random.Random(4))
        flat = flatten(tree)
        assert flat.degree.tolist() == [tree.degree(i) for i in range(tree.n)]

    def test_flatten_cached(self):
        tree = chain_tree(5)
        assert flatten(tree) is flatten(chain_tree(5))

    @given(trees_with_rates(min_nodes=1, max_nodes=25))
    @settings(max_examples=40, deadline=None)
    def test_subtree_accumulate_matches_tree_sums(self, tree_rates):
        tree, rates = tree_rates
        flat = FlatTree(tree)
        got = subtree_accumulate(flat, np.asarray(rates))
        want = tree.subtree_sums(rates)
        assert got.tolist() == pytest.approx(want, abs=1e-9)

    @given(trees_with_rates(min_nodes=1, max_nodes=25))
    @settings(max_examples=40, deadline=None)
    def test_forwarded_matches_load_assignment(self, tree_rates):
        tree, rates = tree_rates
        flat = FlatTree(tree)
        rng = random.Random(11)
        served = [rng.uniform(0.0, 50.0) for _ in range(tree.n)]
        got = forwarded_rates(flat, np.asarray(rates), np.asarray(served))
        want = LoadAssignment(tree, rates, served).forwarded
        assert got.tolist() == pytest.approx(list(want), abs=1e-9)

    @given(trees_with_rates(min_nodes=1, max_nodes=25))
    @settings(max_examples=40, deadline=None)
    def test_resettle_matches_python_reference(self, tree_rates):
        tree, rates = tree_rates
        rng = random.Random(13)
        served = np.asarray([rng.uniform(0.0, 30.0) for _ in range(tree.n)])
        got = resettle_served(flatten(tree), np.asarray(rates), served)
        # the python reference the seed used, inlined
        loads = [0.0] * tree.n
        fwd = [0.0] * tree.n
        for u in tree.bottomup():
            arriving = rates[u] + sum(fwd[c] for c in tree.children(u))
            if u == tree.root:
                loads[u] = arriving
            else:
                loads[u] = min(served[u], arriving)
                fwd[u] = arriving - loads[u]
        assert got.tolist() == pytest.approx(loads, abs=1e-9)
        assert resettle(tree, rates, served.tolist()) == pytest.approx(
            loads, abs=1e-9
        )


class TestRoundMatchesReference:
    @given(
        trees_with_rates(min_nodes=2, max_nodes=25),
        st.sampled_from([None, 0.15, 0.5]),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_sync_round_equals_reference(self, tree_rates, alpha, rounds):
        tree, rates = tree_rates
        flat = flatten(tree)
        alphas = (
            degree_edge_alphas(flat)
            if alpha is None
            else fixed_edge_alphas(flat, alpha)
        )
        engine = SyncEngine(flat, rates, rates, alphas)
        amap = edge_alpha_map(flat, alphas)
        expected = list(map(float, rates))
        for _ in range(rounds):
            engine.step()
            expected = reference_round(tree, rates, expected, amap)
        assert engine.loads.tolist() == pytest.approx(expected, abs=1e-9)

    def test_quantized_round_equals_reference(self):
        tree = kary_tree(2, 3)
        rng = random.Random(21)
        rates = [rng.uniform(0.0, 60.0) for _ in range(tree.n)]
        flat = flatten(tree)
        alphas = degree_edge_alphas(flat)
        engine = SyncEngine(flat, rates, rates, alphas, quantum=0.5)
        amap = edge_alpha_map(flat, alphas)
        expected = list(map(float, rates))
        for _ in range(20):
            engine.step()
            expected = reference_round(tree, rates, expected, amap, quantum=0.5)
        assert engine.loads.tolist() == pytest.approx(expected, abs=1e-9)


class TestKernelInvariants:
    @given(
        trees_with_rates(min_nodes=2, max_nodes=30),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_sync_mass_nonnegativity_nss(self, tree_rates, weighted):
        tree, rates = tree_rates
        flat = flatten(tree)
        rng = random.Random(tree.n)
        caps = (
            [rng.uniform(0.5, 8.0) for _ in range(tree.n)] if weighted else None
        )
        engine = SyncEngine(
            flat, rates, rates, degree_edge_alphas(flat), capacities=caps
        )
        total = float(np.sum(engine.loads))
        for _ in range(25):
            engine.step()
            loads = engine.loads
            # mass conservation
            assert float(np.sum(loads)) == pytest.approx(total, abs=1e-7)
            # non-negative served loads
            assert float(loads.min()) >= -1e-9
            # NSS: no subtree serves more than it spontaneously generates
            fwd = forwarded_rates(flat, engine.spontaneous, loads)
            assert float(fwd.min()) >= -1e-7

    @given(trees_with_rates(min_nodes=2, max_nodes=20))
    @settings(max_examples=30, deadline=None)
    def test_async_mass_nonnegativity_nss(self, tree_rates):
        tree, rates = tree_rates
        flat = flatten(tree)
        engine = AsyncEngine(
            flat,
            rates,
            rates,
            degree_edge_alphas(flat),
            random.Random(7),
            max_staleness=3,
        )
        total = float(np.sum(engine.loads))
        for _ in range(80):
            engine.activate()
            loads = engine.loads
            assert float(np.sum(loads)) == pytest.approx(total, abs=1e-7)
            assert float(loads.min()) >= -1e-9
            fwd = forwarded_rates(flat, np.asarray(rates, dtype=float), loads)
            assert float(fwd.min()) >= -1e-7

    def test_gossip_delay_conserves_and_respects_nss(self):
        tree = kary_tree(3, 3)
        rng = random.Random(17)
        rates = [rng.uniform(0.0, 50.0) for _ in range(tree.n)]
        flat = flatten(tree)
        engine = SyncEngine(
            flat, rates, rates, degree_edge_alphas(flat), gossip_delay=3
        )
        total = float(np.sum(engine.loads))
        for _ in range(60):
            engine.step()
            assert float(np.sum(engine.loads)) == pytest.approx(total, abs=1e-7)
            fwd = forwarded_rates(flat, engine.spontaneous, engine.loads)
            assert float(fwd.min()) >= -1e-7

    def test_incremental_forwarded_stays_exact(self):
        """The O(1)-per-edge A bookkeeping tracks the from-scratch value."""
        tree = random_tree(60, random.Random(23))
        rng = random.Random(29)
        rates = [rng.uniform(0.0, 40.0) for _ in range(tree.n)]
        flat = flatten(tree)
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(200):
            engine.step()
        fresh = forwarded_rates(flat, engine.spontaneous, engine.loads)
        assert engine._fwd.tolist() == pytest.approx(fresh.tolist(), abs=1e-8)

    def test_rate_swap_keeps_invariants(self):
        """A dynamics change point resettles loads and keeps NSS intact."""
        tree = kary_tree(2, 3)
        rng = random.Random(31)
        rates = [rng.uniform(0.0, 20.0) for _ in range(tree.n)]
        flat = flatten(tree)
        engine = SyncEngine(flat, rates, rates, degree_edge_alphas(flat))
        for _ in range(30):
            engine.step()
        new_rates = [rng.uniform(0.0, 20.0) for _ in range(tree.n)]
        engine.resettle(new_rates)
        assert float(np.sum(engine.loads)) == pytest.approx(sum(new_rates), abs=1e-7)
        for _ in range(30):
            engine.step()
            fwd = forwarded_rates(flat, engine.spontaneous, engine.loads)
            assert float(fwd.min()) >= -1e-7
            assert float(engine.loads.min()) >= -1e-9
