"""Tests for the independent bottom-up TLB solver (repro.core.pava)."""

from __future__ import annotations

import pytest

from repro.core.pava import tree_waterfill
from repro.core.tree import RoutingTree, chain_tree, kary_tree, star_tree

from tests.helpers import assert_feasible


class TestBasics:
    def test_single_node(self):
        result = tree_waterfill(RoutingTree([0]), [5.0])
        assert result.assignment.served == (5.0,)
        assert result.num_folds == 1

    def test_chain_hot_leaf(self):
        result = tree_waterfill(chain_tree(3), [0, 0, 30])
        assert result.assignment.served == (10.0, 10.0, 10.0)
        assert result.fold_members == {0: (0, 1, 2)}

    def test_star_partial(self):
        result = tree_waterfill(star_tree(3), [0, 0, 30])
        assert result.assignment.served == (15.0, 0.0, 15.0)
        assert result.fold_members == {0: (0, 2), 1: (1,)}

    def test_hot_root_immobile(self):
        result = tree_waterfill(chain_tree(3), [30, 0, 0])
        assert result.assignment.served == (30.0, 0.0, 0.0)

    def test_feasible(self):
        tree = kary_tree(2, 3)
        rates = [float((i * 7) % 13) for i in range(tree.n)]
        assert_feasible(tree_waterfill(tree, rates).assignment)

    def test_cascading_merge(self):
        # grandchild hot enough to pull its parent and grandparent into one
        # fold, then the merged fold's children must be re-examined
        tree = RoutingTree([0, 0, 1, 1])  # 0 <- 1 <- {2, 3}
        # node 2 very hot; node 3 moderately hot: after 2 merges through,
        # 3's load may exceed the merged fold's and must also fold
        result = tree_waterfill(tree, [0.0, 0.0, 90.0, 40.0])
        # single fold: everyone serves (0+0+90+40)/4 = 32.5
        assert result.assignment.served == (32.5, 32.5, 32.5, 32.5)

    def test_recheck_after_dilution(self):
        # fold f (load 50) merges into open (load 0) -> merged load drops;
        # f's child fold (load 30, previously stable under f) must now merge
        tree = chain_tree(3)
        result = tree_waterfill(tree, [0.0, 100.0, 30.0])
        # {1} folds into {0} at 50, then {2} at 30 < 50? no: 30 < 50 stays.
        assert result.assignment.served == (50.0, 50.0, 30.0)

    def test_recheck_after_dilution_triggers(self):
        tree = chain_tree(3)
        # {2}=40 < {1}=50: stable under 1.  {1} merges {0} -> load 25;
        # now 40 > 25, so {2} must also fold: one fold at 90/3 = 30.
        result = tree_waterfill(tree, [0.0, 50.0, 40.0])
        assert result.assignment.served == pytest.approx((30.0, 30.0, 30.0))

    def test_recheck_cascade_merges_all(self):
        tree = chain_tree(3)
        # {2}=48 < {1}=50 stable; {1} merges {0} -> 25; 48 > 25 so {2}
        # must join: all one fold at 98/3
        result = tree_waterfill(tree, [0.0, 50.0, 48.0])
        expected = 98.0 / 3.0
        assert result.assignment.served == pytest.approx((expected,) * 3)
