"""Frozen construction configs: validation and the deprecated shims."""

from __future__ import annotations

import pytest

from repro.cluster.batch import BatchEngine
from repro.cluster.config import ClusterConfig
from repro.cluster.runtime import ClusterRuntime
from repro.core.config import EngineConfig
from repro.core.kernel import SyncEngine, degree_edge_alphas, flatten
from repro.core.tree import kary_tree


TREE = kary_tree(2, 2)
N = TREE.n


def make_engine(**kwargs):
    flat = flatten(TREE)
    return SyncEngine(flat, [1.0] * N, [1.0] * N, degree_edge_alphas(flat), **kwargs)


class TestEngineConfigValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.capacities is None
        assert config.gossip_delay == 0
        assert config.adaptive is True

    @pytest.mark.parametrize(
        "field,value",
        [
            ("capacities", ()),
            ("capacities", (1.0, -2.0)),
            ("capacities", (0.0,)),
            ("gossip_delay", -1),
            ("gossip_delay", 1.5),
            ("quantum", -0.25),
            ("density_threshold", 1.5),
        ],
    )
    def test_bad_values_raise_naming_the_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            EngineConfig(**{field: value})

    def test_nonpositive_density_threshold_is_legal(self):
        # forces the dense path forever — an existing, supported setting
        assert EngineConfig(density_threshold=-1.0).density_threshold == -1.0

    def test_capacities_coerced_to_float_tuple(self):
        assert EngineConfig(capacities=[1, 2]).capacities == (1.0, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            EngineConfig().quantum = 1.0


class TestClusterConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("alpha", 0.0),
            ("alpha", 1.5),
            ("alpha", -0.1),
            ("capacities", ()),
            ("capacities", (-1.0,)),
            ("tolerance", 0.0),
            ("tolerance", -1e-3),
        ],
    )
    def test_bad_values_raise_naming_the_field(self, field, value):
        with pytest.raises(ValueError, match=field):
            ClusterConfig(**{field: value})

    def test_defaults_are_valid(self):
        config = ClusterConfig()
        assert config.alpha is None and config.prune is True


class TestDeprecatedShims:
    def test_loose_kwargs_warn_and_still_work(self):
        with pytest.warns(DeprecationWarning, match="SyncEngine.*deprecated"):
            legacy = make_engine(gossip_delay=2, quantum=0.5)
        modern = make_engine(config=EngineConfig(gossip_delay=2, quantum=0.5))
        for _ in range(5):
            legacy.step()
            modern.step()
        assert legacy.loads.tobytes() == modern.loads.tobytes()

    def test_config_construction_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_engine(config=EngineConfig(adaptive=False))

    def test_mixing_config_and_loose_kwargs_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            make_engine(config=EngineConfig(), adaptive=False)

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError, match="bogus"):
            make_engine(bogus=1)

    def test_cluster_runtime_loose_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ClusterRuntime.*deprecated"):
            runtime = ClusterRuntime({0: TREE}, adaptive=False)
        assert runtime.state()["adaptive"] is False

    def test_cluster_runtime_config_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ClusterRuntime({0: TREE}, config=ClusterConfig(adaptive=False))


class TestBatchEngineRejectsUnsupportedFields:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("capacities", (1.0,) * N),
            ("gossip_delay", 1),
            ("quantum", 0.5),
        ],
    )
    def test_unsupported_config_fields_named_in_error(self, field, value):
        flat = flatten(TREE)
        with pytest.raises(ValueError, match=field):
            BatchEngine(
                flat,
                [[1.0] * N],
                None,
                degree_edge_alphas(flat),
                config=EngineConfig(**{field: value}),
            )
