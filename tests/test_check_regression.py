"""The perf-regression guard CLI (benchmarks/check_regression.py)."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_SCRIPT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "check_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_regression", check_regression)
_spec.loader.exec_module(check_regression)


def _doc(entries, schema="bench-kernels/v1"):
    return {"schema": schema, "entries": entries}


class TestFindRegressions:
    def test_no_regression_within_threshold(self):
        base = _doc({"k": {"rounds_per_sec": 100.0, "nodes": 1000}})
        fresh = _doc({"k": {"rounds_per_sec": 80.0, "nodes": 1000}})
        assert check_regression.find_regressions(base, fresh) == []

    def test_regression_beyond_threshold(self):
        base = _doc({"k": {"rounds_per_sec": 100.0}})
        fresh = _doc({"k": {"rounds_per_sec": 60.0}})
        found = check_regression.find_regressions(base, fresh)
        assert len(found) == 1
        name, field, base_v, fresh_v, ratio = found[0]
        assert (name, field) == ("k", "rounds_per_sec")
        assert ratio == pytest.approx(0.6)

    def test_speedup_is_a_throughput_metric(self):
        base = _doc({"k": {"speedup": 20.0}})
        fresh = _doc({"k": {"speedup": 5.0}})
        assert len(check_regression.find_regressions(base, fresh)) == 1

    def test_non_throughput_fields_ignored(self):
        base = _doc({"k": {"seconds_per_round": 1.0, "nodes": 1000}})
        fresh = _doc({"k": {"seconds_per_round": 50.0, "nodes": 10}})
        assert check_regression.find_regressions(base, fresh) == []

    def test_missing_entries_and_fields_skipped(self):
        base = _doc(
            {
                "only_in_base": {"rounds_per_sec": 10.0},
                "shared": {"rounds_per_sec": 10.0},
            }
        )
        fresh = _doc(
            {"shared": {"other": 1.0}, "only_in_fresh": {"rounds_per_sec": 1.0}}
        )
        assert check_regression.find_regressions(base, fresh) == []

    def test_custom_threshold(self):
        base = _doc({"k": {"rounds_per_sec": 100.0}})
        fresh = _doc({"k": {"rounds_per_sec": 89.0}})
        assert check_regression.find_regressions(base, fresh, threshold=0.3) == []
        assert (
            len(check_regression.find_regressions(base, fresh, threshold=0.1)) == 1
        )

    def test_ratio_only_ignores_absolute_rates(self):
        """CI mode: machine-dependent per_sec drops do not trip the gate."""
        base = _doc({"k": {"rounds_per_sec": 100.0, "speedup": 20.0}})
        fresh = _doc({"k": {"rounds_per_sec": 10.0, "speedup": 19.0}})
        assert (
            check_regression.find_regressions(base, fresh, ratio_only=True) == []
        )
        fresh_bad = _doc({"k": {"rounds_per_sec": 10.0, "speedup": 2.0}})
        found = check_regression.find_regressions(base, fresh_bad, ratio_only=True)
        assert [(f[0], f[1]) for f in found] == [("k", "speedup")]

    def test_schema_mismatch_raises(self):
        base = _doc({}, schema="bench-kernels/v1")
        fresh = _doc({}, schema="bench-cluster/v1")
        with pytest.raises(ValueError, match="schema mismatch"):
            check_regression.find_regressions(base, fresh)


class TestCli:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _doc({"k": {"rounds_per_sec": 10.0}}))
        fresh = self._write(tmp_path / "f.json", _doc({"k": {"rounds_per_sec": 11.0}}))
        assert check_regression.main([base, fresh]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path / "b.json", _doc({"k": {"rounds_per_sec": 10.0}}))
        fresh = self._write(tmp_path / "f.json", _doc({"k": {"rounds_per_sec": 1.0}}))
        assert check_regression.main([base, fresh]) == 1
        assert "regression" in capsys.readouterr().out

    def test_exit_two_on_missing_file(self, tmp_path):
        base = self._write(tmp_path / "b.json", _doc({}))
        assert check_regression.main([base, str(tmp_path / "nope.json")]) == 2

    def test_committed_bench_files_pass_self_comparison(self):
        bench_dir = _SCRIPT.parent
        for name in (
            "BENCH_kernels.json",
            "BENCH_cluster.json",
            "BENCH_packet.json",
            "BENCH_adaptive.json",
        ):
            path = bench_dir / name
            if not path.exists():
                continue
            doc = json.loads(path.read_text())
            assert check_regression.find_regressions(doc, doc) == []
