"""Tests for the packet-level scenario harness (base datapath)."""

from __future__ import annotations

import pytest

from repro.core.tree import kary_tree
from repro.documents.catalog import Catalog
from repro.net.generators import kary_tree_topology
from repro.net.routing import shortest_path_tree
from repro.protocols.scenario import Scenario, ScenarioConfig
from repro.traffic.workload import hot_document_workload


def make_workload(height=2, rate=5.0, documents=4):
    tree = kary_tree(2, height)
    catalog = Catalog.generate(home=tree.root, count=documents)
    rates = [0.0] + [rate] * (tree.n - 1)
    return hot_document_workload(tree, catalog, rates, zipf_s=0.8)


def small_config(**overrides):
    defaults = dict(duration=10.0, warmup=2.0, seed=1, default_capacity=200.0)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestConfigValidation:
    def test_defaults_ok(self):
        ScenarioConfig()

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration=0.0)

    def test_bad_warmup(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration=10.0, warmup=10.0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            ScenarioConfig(default_capacity=0.0)


class TestBaseDatapath:
    def test_all_requests_served_at_home_without_protocol(self):
        scenario = Scenario(make_workload(), small_config())
        metrics = scenario.run()
        # base scenario has no caching protocol: only the home holds copies
        assert metrics.served_by_node.keys() == {0}
        assert metrics.home_share == 1.0

    def test_every_finished_request_served_once_on_path(self):
        scenario = Scenario(make_workload(), small_config())
        scenario.run()
        for request in scenario._finished:
            assert request.served_by is not None
            # the serving node must lie on the origin -> home route: the
            # paper's directory-free invariant
            assert request.served_by in scenario.tree.path_to_root(request.origin)

    def test_request_paths_climb_toward_root(self):
        scenario = Scenario(make_workload(), small_config())
        scenario.run()
        for request in scenario._finished[:200]:
            path = request.path
            for a, b in zip(path, path[1:]):
                assert scenario.tree.parent(a) == b

    def test_response_time_at_least_route_delay(self):
        scenario = Scenario(make_workload(), small_config())
        scenario.run()
        for request in scenario._finished[:100]:
            min_delay = 2 * scenario.path_delay(request.origin, request.served_by)
            assert request.response_time >= min_delay - 1e-9

    def test_determinism(self):
        a = Scenario(make_workload(), small_config()).run()
        b = Scenario(make_workload(), small_config()).run()
        assert a.completed == b.completed
        assert a.response_times == b.response_times

    def test_seed_changes_workload(self):
        a = Scenario(make_workload(), small_config(seed=1)).run()
        b = Scenario(make_workload(), small_config(seed=2)).run()
        assert a.response_times != b.response_times

    def test_generated_counts_post_warmup_only(self):
        scenario = Scenario(make_workload(), small_config())
        metrics = scenario.run()
        total = len(scenario.requests)
        assert 0 < metrics.generated < total

    def test_constant_arrivals(self):
        scenario = Scenario(
            make_workload(), small_config(arrival_kind="constant")
        )
        metrics = scenario.run()
        assert metrics.completed > 0


class TestDelaysAndTopology:
    def test_default_hop_delay(self):
        scenario = Scenario(make_workload(), small_config(hop_delay=0.02))
        assert scenario.edge_delay(1, 0) == 0.02

    def test_topology_delays_used(self):
        topo = kary_tree_topology(2, 2, delay=0.07)
        tree = shortest_path_tree(topo, 0)
        catalog = Catalog.generate(home=0, count=2)
        wl = hot_document_workload(tree, catalog, [0.0] + [1.0] * 6)
        scenario = Scenario(wl, small_config(), topology=topo)
        assert scenario.edge_delay(1, 0) == 0.07
        assert scenario.servers[3].capacity == topo.capacity(3)

    def test_path_delay_symmetric(self):
        scenario = Scenario(make_workload(height=3), small_config())
        assert scenario.path_delay(7, 8) == pytest.approx(
            scenario.path_delay(8, 7)
        )

    def test_path_delay_via_common_ancestor(self):
        scenario = Scenario(make_workload(height=2), small_config(hop_delay=0.01))
        # nodes 3 and 4 are siblings under node 1: 2 hops
        assert scenario.path_delay(3, 4) == pytest.approx(0.02)
        assert scenario.path_delay(3, 3) == 0.0


class TestMetrics:
    def test_throughput_matches_completed(self):
        scenario = Scenario(make_workload(), small_config())
        metrics = scenario.run()
        expected = metrics.completed / metrics.measured_window
        assert metrics.throughput == pytest.approx(expected)

    def test_percentiles_ordered(self):
        metrics = Scenario(make_workload(), small_config()).run()
        p50 = metrics.response_time_percentile(50)
        p95 = metrics.response_time_percentile(95)
        assert p50 <= p95

    def test_message_counting(self):
        scenario = Scenario(make_workload(), small_config())
        scenario.count_message("gossip")
        scenario.count_message("gossip", 3)
        assert scenario.messages == {"gossip": 4}

    def test_measured_assignment_and_target(self):
        scenario = Scenario(make_workload(), small_config())
        scenario.run()
        measured = scenario.measured_assignment()
        target = scenario.tlb_target()
        assert measured.tree is scenario.tree
        assert target.total_served == pytest.approx(
            sum(scenario.workload.node_rates())
        )
