"""Tests for the packet-level WebWave protocol."""

from __future__ import annotations

import pytest

from repro.core.tree import chain_tree, kary_tree
from repro.documents.catalog import Catalog
from repro.protocols.scenario import ScenarioConfig
from repro.protocols.webwave import WebWaveProtocolConfig, WebWaveScenario
from repro.traffic.workload import hot_document_workload


def hot_leaf_workload(height=2, hot_rate=40.0, documents=6):
    tree = kary_tree(2, height)
    rates = [0.0] * tree.n
    for leaf in tree.leaves():
        rates[leaf] = hot_rate
    catalog = Catalog.generate(home=tree.root, count=documents)
    return hot_document_workload(tree, catalog, rates, zipf_s=0.9)


def run_scenario(workload=None, capacity=30.0, duration=30.0, protocol=None, seed=1):
    workload = workload or hot_leaf_workload()
    config = ScenarioConfig(
        duration=duration, warmup=duration / 3, seed=seed, default_capacity=capacity
    )
    scenario = WebWaveScenario(workload, config, protocol=protocol)
    metrics = scenario.run()
    return scenario, metrics


class TestProtocolConfig:
    def test_defaults(self):
        WebWaveProtocolConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gossip_period": 0.0},
            {"diffusion_period": -1.0},
            {"alpha": 0.0},
            {"alpha": 2.0},
            {"patience": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            WebWaveProtocolConfig(**kwargs)


class TestLoadSpreading:
    def test_home_offloaded(self):
        scenario, metrics = run_scenario()
        # with caching, the home should serve a minority of requests
        assert metrics.home_share < 0.5

    def test_throughput_tracks_offered_load(self):
        scenario, metrics = run_scenario()
        offered = scenario.workload.total_rate
        assert metrics.throughput > 0.8 * offered

    def test_copies_created_beyond_home(self):
        scenario, _ = run_scenario()
        holders = [
            i
            for i in scenario.tree
            if i != scenario.tree.root and len(scenario.servers[i].store) > 0
        ]
        assert holders

    def test_filters_synced_with_caches(self):
        scenario, _ = run_scenario()
        for node in scenario.tree:
            if node == scenario.tree.root:
                continue
            server = scenario.servers[node]
            router = scenario.routers[node]
            assert set(router.filters.filter_of(node).doc_ids) == set(
                server.store.doc_ids
            )

    def test_gossip_messages_counted(self):
        scenario, metrics = run_scenario()
        assert metrics.messages.get("gossip", 0) > 0

    def test_copy_transfers_counted(self):
        scenario, metrics = run_scenario()
        assert metrics.messages.get("copy_transfer", 0) > 0

    def test_directory_free_serving(self):
        scenario, _ = run_scenario()
        for request in scenario._finished:
            assert request.served_by in scenario.tree.path_to_root(request.origin)

    def test_better_than_no_protocol(self):
        from repro.protocols.baselines import NoCacheScenario

        workload = hot_leaf_workload()
        config = ScenarioConfig(
            duration=30.0, warmup=10.0, seed=1, default_capacity=30.0
        )
        webwave = WebWaveScenario(workload, config).run()
        nocache = NoCacheScenario(workload, config).run()
        assert webwave.throughput > 2 * nocache.throughput
        # under this overload the home's queue grows without bound, so
        # no-cache may complete nothing after warmup at all (NaN latency);
        # when it does complete requests, WebWave must be faster
        if nocache.completed:
            assert webwave.mean_response_time < nocache.mean_response_time


class TestEstimates:
    def test_load_estimates_populated_by_gossip(self):
        scenario, _ = run_scenario()
        tree = scenario.tree
        for i in tree:
            for j in tree.neighbors(i):
                assert j in scenario.load_estimates[i]
        # at least some estimates should be non-zero after a busy run
        assert any(
            v > 0 for est in scenario.load_estimates for v in est.values()
        )


class TestTunneling:
    def test_tunnel_counter_consistent(self):
        scenario, metrics = run_scenario()
        assert scenario.tunnel_count == metrics.messages.get("tunnel_fetch", 0)

    def test_tunneling_can_be_disabled(self):
        protocol = WebWaveProtocolConfig(tunneling=False)
        scenario, metrics = run_scenario(protocol=protocol)
        assert scenario.tunnel_count == 0

    def test_chain_with_mid_barrier_tunnels(self):
        # chain 0-1-2-3; node 3 hot for one doc, node 1 pre-loaded with a
        # different doc so delegation from 1 to 2 cannot help 2's demand
        tree = chain_tree(4)
        catalog = Catalog.generate(home=0, count=2)
        rates = {
            3: {"doc-0": 40.0},
            2: {"doc-1": 40.0},
        }
        from repro.traffic.workload import Workload

        workload = Workload(tree, catalog, rates)
        config = ScenarioConfig(
            duration=40.0, warmup=10.0, seed=3, default_capacity=25.0
        )
        protocol = WebWaveProtocolConfig(patience=1)
        scenario = WebWaveScenario(workload, config, protocol=protocol)
        metrics = scenario.run()
        # the offered load (80/s) exceeds any two nodes' capacity (50/s):
        # without spreading across at least 3 nodes throughput would stall
        assert metrics.throughput > 0.85 * workload.total_rate
