"""Failure-injection tests: WebWave's directory-free robustness.

A crashed cache server loses its copies and stops diverting; requests keep
climbing the tree toward the home, so nothing is lost - service degrades to
the no-cache path and diffusion rebuilds copies after recovery.
"""

from __future__ import annotations

import pytest

from repro.core.tree import kary_tree
from repro.documents.catalog import Catalog
from repro.protocols.scenario import Scenario, ScenarioConfig
from repro.protocols.webwave import WebWaveScenario
from repro.traffic.workload import hot_document_workload


def make_workload(rate=8.0):
    tree = kary_tree(2, 2)
    catalog = Catalog.generate(home=0, count=4)
    rates = [0.0] + [rate] * (tree.n - 1)
    return hot_document_workload(tree, catalog, rates, zipf_s=0.8)


class TestScheduleFailure:
    def test_home_cannot_fail(self):
        scenario = Scenario(make_workload(), ScenarioConfig(duration=5.0, warmup=1.0))
        with pytest.raises(ValueError, match="home"):
            scenario.schedule_failure(0, at=1.0)

    def test_recovery_after_failure_required(self):
        scenario = Scenario(make_workload(), ScenarioConfig(duration=5.0, warmup=1.0))
        with pytest.raises(ValueError, match="recovery"):
            scenario.schedule_failure(1, at=2.0, until=2.0)

    def test_crash_clears_cache_and_filter(self):
        scenario = WebWaveScenario(
            make_workload(), ScenarioConfig(duration=20.0, warmup=5.0, seed=3)
        )
        scenario.schedule_failure(1, at=15.0)
        scenario.run()
        assert scenario.servers[1].failed
        assert len(scenario.servers[1].store) == 0
        own = scenario.routers[1].filters.filter_of(1)
        assert len(own.doc_ids) == 0
        assert scenario.messages.get("node_failure") == 1

    def test_recovery_flag(self):
        scenario = WebWaveScenario(
            make_workload(), ScenarioConfig(duration=20.0, warmup=5.0, seed=3)
        )
        scenario.schedule_failure(1, at=8.0, until=12.0)
        scenario.run()
        assert not scenario.servers[1].failed
        assert scenario.messages.get("node_recovery") == 1


class TestServiceContinuity:
    def test_no_request_lost_across_failures(self):
        workload = make_workload()
        config = ScenarioConfig(duration=30.0, warmup=5.0, seed=9)
        scenario = WebWaveScenario(workload, config)
        scenario.schedule_failure(1, at=10.0, until=20.0)
        scenario.schedule_failure(2, at=12.0)
        metrics = scenario.run()
        # every post-warmup request completed despite two crashes
        assert metrics.completed == metrics.generated
        # and the directory-free invariant survives failures
        for request in scenario._finished:
            assert request.served_by in scenario.tree.path_to_root(request.origin)

    def test_failed_node_serves_nothing_while_down(self):
        workload = make_workload()
        config = ScenarioConfig(duration=30.0, warmup=5.0, seed=9)
        scenario = WebWaveScenario(workload, config)
        scenario.schedule_failure(1, at=10.0, until=25.0)
        scenario.run()
        served_while_down = [
            r
            for r in scenario._finished
            if r.served_by == 1 and r.served_at is not None and 10.0 < r.served_at < 25.0
        ]
        assert served_while_down == []

    def test_copies_rebuilt_after_recovery(self):
        workload = make_workload(rate=15.0)
        config = ScenarioConfig(
            duration=60.0, warmup=10.0, seed=4, default_capacity=20.0
        )
        scenario = WebWaveScenario(workload, config)
        # crash a level-1 node early, recover mid-run
        scenario.schedule_failure(1, at=15.0, until=25.0)
        scenario.run()
        # diffusion re-delegated documents to the recovered node
        assert len(scenario.servers[1].store) > 0
