"""Parity and determinism pins for the array-backed packet plane.

Three layers of evidence that the PR-4 refactor (array state, inline path
walker, batched arrival timelines, shared Figure 5 policy) changed no
observable metric:

* **Goldens** - ``tests/golden/packet_goldens.json`` was recorded from the
  original dict-based, event-per-hop implementation *before* the refactor;
  every case must still reproduce it bit for bit.
* **Live reference** - :mod:`repro.protocols.reference` preserves the
  original implementation; a run of each plane on the same workload must
  produce identical :class:`ScenarioMetrics` on this host, whatever its
  libm.
* **Determinism** - two runs of every protocol with the same seed produce
  identical metrics (the satellite contract for all packet protocols).
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

from repro.core.tree import kary_tree
from repro.documents.catalog import Catalog
from repro.protocols.baselines import (
    DirectoryScenario,
    IcpScenario,
    NoCacheScenario,
    PushScenario,
)
from repro.protocols.reference import ReferenceWebWaveScenario
from repro.protocols.scenario import Scenario, ScenarioConfig
from repro.protocols.webwave import WebWaveScenario
from repro.traffic.workload import hot_document_workload

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_packet_goldens", GOLDEN_DIR / "generate_packet_goldens.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


GEN = _load_generator()
GOLDENS = json.loads((GOLDEN_DIR / "packet_goldens.json").read_text())


def metrics_equal(a, b) -> bool:
    return (
        a.completed == b.completed
        and a.generated == b.generated
        and a.response_times == b.response_times
        and a.hops == b.hops
        and a.served_by_node == b.served_by_node
        and a.messages == b.messages
        and a.home_served == b.home_served
    )


class TestGoldenParity:
    """The refactored plane reproduces the pre-refactor fingerprints."""

    @pytest.mark.parametrize("case", sorted(GOLDENS))
    def test_case_matches_golden(self, case):
        scenario = GEN.build_cases()[case]
        fingerprint = GEN.fingerprint(scenario, scenario.run())
        expected = GOLDENS[case]
        mismatched = {
            key: (fingerprint.get(key), value)
            for key, value in expected.items()
            if fingerprint.get(key) != value
        }
        assert not mismatched, f"{case} diverged from pre-refactor golden: {mismatched}"


def small_workload(hot_rate=40.0):
    tree = kary_tree(2, 2)
    rates = [0.0] * tree.n
    for leaf in tree.leaves():
        rates[leaf] = hot_rate
    catalog = Catalog.generate(home=tree.root, count=6)
    return hot_document_workload(tree, catalog, rates, zipf_s=0.9)


class TestLiveReferenceParity:
    """New plane vs the frozen pre-refactor implementation, same host."""

    def test_webwave_bit_identical_to_reference(self):
        config = ScenarioConfig(
            duration=20.0, warmup=5.0, seed=7, default_capacity=30.0
        )
        reference = ReferenceWebWaveScenario(small_workload(), config).run()
        refactored = WebWaveScenario(small_workload(), config).run()
        assert metrics_equal(reference, refactored)

    def test_router_counters_match_reference(self):
        config = ScenarioConfig(
            duration=10.0, warmup=2.0, seed=3, default_capacity=30.0
        )
        reference = ReferenceWebWaveScenario(small_workload(), config)
        reference.run()
        refactored = WebWaveScenario(small_workload(), config)
        refactored.run()
        for ref_router, new_router in zip(reference.routers, refactored.routers):
            assert ref_router.packets_seen == new_router.packets_seen
            assert ref_router.packets_diverted == new_router.packets_diverted
            assert (
                ref_router.filters.consultations == new_router.filters.consultations
            )


PROTOCOLS = {
    "base": Scenario,
    "webwave": WebWaveScenario,
    "no_cache": NoCacheScenario,
    "directory": DirectoryScenario,
    "icp": IcpScenario,
    "push": PushScenario,
}


class TestSameSeedDeterminism:
    """Two same-seed runs of every packet protocol agree exactly."""

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_two_runs_identical(self, name):
        cls = PROTOCOLS[name]
        config = ScenarioConfig(
            duration=12.0, warmup=3.0, seed=11, default_capacity=30.0
        )
        first = cls(small_workload(), config).run()
        second = cls(small_workload(), config).run()
        assert metrics_equal(first, second), f"{name} is not deterministic"

    @pytest.mark.parametrize("kind", ["poisson", "constant", "pareto"])
    def test_arrival_kinds_deterministic(self, kind):
        config = ScenarioConfig(
            duration=10.0,
            warmup=2.0,
            seed=5,
            default_capacity=60.0,
            arrival_kind=kind,
        )
        first = WebWaveScenario(small_workload(hot_rate=10.0), config).run()
        second = WebWaveScenario(small_workload(hot_rate=10.0), config).run()
        assert metrics_equal(first, second)
        assert first.generated > 0


class TestArrivalKindValidation:
    def test_unknown_kind_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="known kinds.*constant.*pareto.*poisson"):
            ScenarioConfig(arrival_kind="fractal")

    def test_known_kinds_accepted(self):
        for kind in ("poisson", "constant", "pareto"):
            ScenarioConfig(arrival_kind=kind)
