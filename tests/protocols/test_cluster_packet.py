"""Tests for cluster-event-driven packet scenarios."""

from __future__ import annotations

import pytest

from repro.cluster.scenarios import churn_scenario, flash_crowd_scenario
from repro.core.tree import kary_tree
from repro.protocols.cluster_packet import (
    ClusterPacketScenario,
    packet_scenario_from_cluster,
)
from repro.protocols.scenario import ScenarioConfig


def small_flash(ticks=20, start=4, end=12):
    return flash_crowd_scenario(
        kary_tree(2, 3),
        documents=6,
        populations=2,
        total_rate=60.0,
        spike_factor=25.0,
        start=start,
        end=end,
        ticks=ticks,
    )


class TestFlashCrowdPacket:
    def test_runs_and_applies_events(self):
        scenario = packet_scenario_from_cluster(small_flash())
        metrics = scenario.run()
        assert metrics.completed > 0
        assert scenario.events_applied == 2
        assert metrics.messages.get("cluster_event") == 2

    def test_spike_multiplies_hot_document_traffic(self):
        cluster = small_flash()
        hot_id = cluster.documents[0][0]
        scenario = packet_scenario_from_cluster(cluster)
        scenario.run()
        before = sum(
            1
            for r in scenario.requests
            if r.doc_id == hot_id and r.created_at < 4.0
        )
        during = sum(
            1
            for r in scenario.requests
            if r.doc_id == hot_id and 4.0 <= r.created_at < 12.0
        )
        # 25x spike over a 2x longer window: expect far more than 2x
        assert during > 5 * max(before, 1)

    def test_same_seed_determinism(self):
        a = packet_scenario_from_cluster(small_flash()).run()
        b = packet_scenario_from_cluster(small_flash()).run()
        assert a.completed == b.completed
        assert a.response_times == b.response_times
        assert a.messages == b.messages

    def test_protocol_still_spreads_load(self):
        scenario = packet_scenario_from_cluster(
            small_flash(),
            config=ScenarioConfig(duration=20.0, warmup=4.0, default_capacity=40.0),
        )
        metrics = scenario.run()
        # copies moved out of the home during the crowd
        assert metrics.messages.get("copy_transfer", 0) > 0
        assert metrics.home_share < 1.0


class TestChurnPacket:
    def test_publish_and_retire_change_traffic(self):
        cluster = churn_scenario(
            kary_tree(2, 3),
            documents=8,
            populations=2,
            total_rate=120.0,
            ticks=18,
            churn_every=6,
        )
        scenario = packet_scenario_from_cluster(cluster)
        scenario.run()
        retire_events = [e for e in cluster.events if e.action == "retire"]
        publish_events = [e for e in cluster.events if e.action == "publish"]
        assert retire_events and publish_events
        # a published document generates requests only after its tick
        fresh = publish_events[0]
        fresh_requests = [r for r in scenario.requests if r.doc_id == fresh.doc_id]
        assert fresh_requests
        assert min(r.created_at for r in fresh_requests) >= fresh.tick * 1.0
        # a retired document generates none after its tick
        retired = retire_events[0]
        late = [
            r
            for r in scenario.requests
            if r.doc_id == retired.doc_id and r.created_at > retired.tick * 1.0
        ]
        assert late == []


class TestScaleEvents:
    def test_per_document_scale_targets_only_that_document(self):
        from repro.cluster.runtime import ClusterEvent

        cluster = small_flash(ticks=16, start=2, end=14)
        # replace the spike events with one per-doc scale at tick 4
        hot_id = cluster.documents[0][0]
        cold_id = cluster.documents[1][0]
        scaled = type(cluster)(
            name=cluster.name,
            trees=cluster.trees,
            documents=cluster.documents,
            events=(
                ClusterEvent(tick=4, action="scale", doc_id=hot_id, factor=20.0),
            ),
            ticks=cluster.ticks,
        )
        scenario = packet_scenario_from_cluster(scaled)
        scenario.run()

        def rate(doc_id, lo, hi):
            count = sum(
                1
                for r in scenario.requests
                if r.doc_id == doc_id and lo <= r.created_at < hi
            )
            return count / (hi - lo)

        # the scaled document's arrival rate jumps ~20x...
        assert rate(hot_id, 4.0, 14.0) > 5 * rate(hot_id, 0.0, 4.0)
        # ...while an unscaled document's stays flat (ratio near 1)
        cold_before = rate(cold_id, 0.0, 4.0)
        assert rate(cold_id, 4.0, 14.0) < 3 * max(cold_before, 0.5)


class TestValidation:
    def test_multi_home_rejected(self):
        cluster = small_flash()
        trees = dict(cluster.trees)
        trees[99] = kary_tree(2, 2)
        bad = type(cluster)(
            name=cluster.name,
            trees=trees,
            documents=cluster.documents,
            events=cluster.events,
            ticks=cluster.ticks,
        )
        with pytest.raises(ValueError, match="one routing tree"):
            ClusterPacketScenario(bad)

    def test_bad_tick_duration(self):
        with pytest.raises(ValueError, match="tick_duration"):
            ClusterPacketScenario(small_flash(), tick_duration=0.0)
