"""Tests for the baseline protocols."""

from __future__ import annotations

import pytest

from repro.core.tree import kary_tree
from repro.documents.catalog import Catalog
from repro.protocols.baselines import (
    DirectoryConfig,
    DirectoryScenario,
    IcpConfig,
    IcpScenario,
    NoCacheScenario,
    PushConfig,
    PushScenario,
)
from repro.protocols.scenario import ScenarioConfig
from repro.traffic.workload import hot_document_workload


def make_workload(height=2, rate=6.0, documents=5):
    tree = kary_tree(2, height)
    catalog = Catalog.generate(home=tree.root, count=documents)
    rates = [0.0] + [rate] * (tree.n - 1)
    return hot_document_workload(tree, catalog, rates, zipf_s=0.9)


def config(**overrides):
    defaults = dict(duration=20.0, warmup=5.0, seed=2, default_capacity=100.0)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestNoCache:
    def test_home_serves_everything(self):
        metrics = NoCacheScenario(make_workload(), config()).run()
        assert metrics.home_share == 1.0

    def test_saturates_at_home_capacity(self):
        wl = make_workload(rate=20.0)  # 120/s offered
        metrics = NoCacheScenario(wl, config(default_capacity=25.0)).run()
        assert metrics.throughput < 30.0

    def test_hops_equal_depth(self):
        scenario = NoCacheScenario(make_workload(), config())
        scenario.run()
        for request in scenario._finished[:100]:
            assert request.hops == scenario.tree.depth(request.origin)


class TestDirectory:
    def test_all_served(self):
        metrics = DirectoryScenario(make_workload(), config()).run()
        assert metrics.completed > 0

    def test_queries_counted(self):
        scenario = DirectoryScenario(make_workload(), config())
        metrics = scenario.run()
        assert metrics.messages["directory_query"] == scenario.directory_queries
        assert scenario.directory_queries >= metrics.completed

    def test_replication_spreads_hot_docs(self):
        wl = make_workload(rate=20.0)
        scenario = DirectoryScenario(
            wl,
            config(default_capacity=40.0),
            directory=DirectoryConfig(replicate_period=1.0),
        )
        scenario.run()
        replicated = [d for d, holders in scenario.replicas.items() if len(holders) > 1]
        assert replicated

    def test_query_capacity_bottleneck(self):
        wl = make_workload(rate=20.0)
        slow = DirectoryScenario(
            wl,
            config(default_capacity=40.0),
            directory=DirectoryConfig(query_capacity=30.0),
        ).run()
        fast = DirectoryScenario(
            wl,
            config(default_capacity=40.0),
            directory=DirectoryConfig(query_capacity=100000.0),
        ).run()
        # the directory lookup queue throttles completion within the window
        assert slow.completed < fast.completed
        assert slow.mean_response_time > fast.mean_response_time

    def test_replica_pick_is_holder(self):
        scenario = DirectoryScenario(make_workload(), config())
        scenario.run()
        for request in scenario._finished:
            assert request.served_by in scenario.replicas[request.doc_id]


class TestIcp:
    def test_demand_fill_builds_caches(self):
        scenario = IcpScenario(make_workload(), config())
        scenario.run()
        cached_nodes = [
            i for i in scenario.tree if len(scenario.servers[i].store) > 0
        ]
        assert len(cached_nodes) > 1

    def test_probe_messages_counted(self):
        scenario = IcpScenario(make_workload(), config())
        metrics = scenario.run()
        assert metrics.messages.get("icp_probe", 0) > 0

    def test_no_demand_fill_keeps_caches_empty(self):
        scenario = IcpScenario(
            make_workload(), config(), icp=IcpConfig(demand_fill=False)
        )
        metrics = scenario.run()
        assert metrics.home_share == 1.0

    def test_hit_serves_locally_after_warmup(self):
        scenario = IcpScenario(make_workload(), config())
        metrics = scenario.run()
        # demand-fill places copies at origins: most load leaves the home
        assert metrics.home_share < 0.5


class TestPush:
    def test_pushed_copies_installed(self):
        scenario = PushScenario(
            make_workload(), config(), push=PushConfig(push_period=2.0, top_k=2)
        )
        metrics = scenario.run()
        pushed = [
            i
            for i in scenario.tree
            if scenario.tree.depth(i) == 1 and len(scenario.servers[i].store) > 0
        ]
        assert pushed
        assert metrics.messages.get("copy_transfer", 0) > 0

    def test_depth_respected(self):
        scenario = PushScenario(
            make_workload(height=3), config(), push=PushConfig(depth=1, top_k=3)
        )
        scenario.run()
        for node in scenario.tree:
            if scenario.tree.depth(node) > 1 and node != scenario.tree.root:
                assert len(scenario.servers[node].store) == 0

    def test_offloads_home_somewhat(self):
        wl = make_workload(rate=10.0)
        push = PushScenario(
            wl, config(), push=PushConfig(push_period=1.0, top_k=5)
        ).run()
        nocache = NoCacheScenario(wl, config()).run()
        assert push.home_share < nocache.home_share
