"""Tests for packet filters and the router datapath."""

from __future__ import annotations

import pytest

from repro.cache.server import CacheServer
from repro.router.packetfilter import DPF_MATCH_COST, FilterTable, PacketFilter
from repro.router.router import RouteDecision, Router


class TestPacketFilter:
    def test_matches(self):
        f = PacketFilter(owner=3, doc_ids=frozenset({"a", "b"}))
        assert f.matches("a")
        assert not f.matches("z")


class TestFilterTable:
    def test_install_and_match(self):
        table = FilterTable()
        table.install(owner=2, doc_ids=["a", "b"])
        assert table.match("a") == 2
        assert table.match("z") is None
        assert len(table) == 2
        assert "a" in table

    def test_remove_only_own_claims(self):
        table = FilterTable()
        table.install(owner=2, doc_ids=["a"])
        table.remove(owner=9, doc_ids=["a"])  # not the owner: no-op
        assert table.match("a") == 2
        table.remove(owner=2, doc_ids=["a"])
        assert table.match("a") is None

    def test_counters(self):
        table = FilterTable()
        table.install(owner=1, doc_ids=["a", "b"])
        table.remove(owner=1, doc_ids=["a"])
        table.match("b")
        table.match("b")
        assert table.installs == 2
        assert table.removals == 1
        assert table.consultations == 2

    def test_filter_of(self):
        table = FilterTable()
        table.install(owner=1, doc_ids=["a", "c"])
        table.install(owner=2, doc_ids=["b"])
        assert table.filter_of(1).doc_ids == frozenset({"a", "c"})

    def test_default_match_cost_is_dpf(self):
        assert FilterTable().match_cost == DPF_MATCH_COST

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            FilterTable(match_cost=-1.0)

    def test_doc_ids_sorted(self):
        table = FilterTable()
        table.install(owner=1, doc_ids=["c", "a"])
        assert table.doc_ids == ("a", "c")


class TestRouter:
    def make_router(self, is_home=False, parent=0):
        server = CacheServer(node=1, is_home=is_home)
        return Router(node=1, server=server, parent=parent), server

    def test_forward_when_no_copy(self):
        router, _ = self.make_router()
        decision = router.process("d", now=0.0)
        assert not decision.serve
        assert decision.next_hop == 0
        assert decision.filter_cost == DPF_MATCH_COST

    def test_serve_on_filter_hit_with_target(self):
        router, server = self.make_router()
        server.install_copy("d")
        server.serve_targets["d"] = 100.0
        router.sync_filter()
        decision = router.process("d", now=0.0)
        assert decision.serve

    def test_decline_when_over_target(self):
        router, server = self.make_router()
        server.install_copy("d")
        server.serve_targets["d"] = 1.0
        router.sync_filter()
        # saturate the measured rate well beyond the 1/s target
        for k in range(50):
            server.record_served(k * 0.01, "d")
        decision = router.process("d", now=1.0)
        assert not decision.serve
        assert decision.next_hop == 0

    def test_home_serves_everything(self):
        router, _ = self.make_router(is_home=True, parent=None)
        decision = router.process("never-seen", now=0.0)
        assert decision.serve

    def test_sync_filter_tracks_cache(self):
        router, server = self.make_router()
        server.install_copy("a")
        router.sync_filter()
        assert "a" in router.filters
        server.drop_copy("a")
        router.sync_filter()
        assert "a" not in router.filters

    def test_divert_ratio(self):
        router, server = self.make_router()
        server.install_copy("d")
        server.serve_targets["d"] = 1e9
        router.sync_filter()
        router.process("d", now=0.0)
        router.process("other", now=0.0)
        assert router.packets_seen == 2
        assert router.packets_diverted == 1
        assert router.divert_ratio == 0.5

    def test_divert_ratio_empty(self):
        router, _ = self.make_router()
        assert router.divert_ratio == 0.0
